"""Network chaos: client + server survive a sabotaged wire.

A :class:`~repro.service.chaos.ChaosProxy` sits between the stdlib
client and a live server, deterministically dropping connections,
stalling responses mid-flight, and truncating NDJSON mid-event.  The
acceptance bar for every mode is the same: the request sequence
completes and the result document is **bit-identical** to what a
clean connection returns — chaos may cost retries, never correctness.

The store is pre-warmed through the server itself, so chaos runs are
fast (no scheduler) and the identical-bytes comparison pins the whole
read path: store → aggregation → canonical JSON → HTTP → client.
"""

from __future__ import annotations

import http.client

import pytest

from repro.core.faults import NetworkFaultPlan
from repro.service import (
    BackgroundServer,
    ChaosProxy,
    ServiceClient,
    ServiceConfig,
)
from repro.workloads.base import TINY

BENCHMARK = "vpenta"
BODY = {
    "kind": "simulate",
    "benchmark": BENCHMARK,
    "mechanisms": ["bypass"],
}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        store=tmp_path_factory.mktemp("chaos-store"), jobs=2, scale=TINY
    )
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture(scope="module")
def reference(server):
    """Clean-connection run: (job id, terminal doc, result bytes)."""
    client = ServiceClient("127.0.0.1", server.port)
    job = client.run(BODY, timeout=240)
    assert job["state"] == "done"
    return job["id"], job, client.result_bytes(job["id"])


def _proxied_client(proxy, timeout=30.0, retries=6) -> ServiceClient:
    return ServiceClient(
        "127.0.0.1", proxy.port, timeout=timeout, retries=retries
    )


def _run_through(proxy, server, reference, **client_kw):
    """Full submit→wait→fetch through the proxy; assert bit-identity."""
    _, _, ref_bytes = reference
    client = _proxied_client(proxy, **client_kw)
    job = client.run(BODY, timeout=120)
    assert job["state"] == "done"
    assert client.result_bytes(job["id"]) == ref_bytes
    return job


class TestFaultModes:
    def test_dropped_connections_are_survived(self, server, reference):
        plan = NetworkFaultPlan.parse("drop:2")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            _run_through(proxy, server, reference)
            assert proxy.faults["drop"] >= 1

    def test_stalled_responses_are_survived(self, server, reference):
        # Stall far past the client's read timeout so the timeout path
        # (not patience) is what recovers.
        plan = NetworkFaultPlan.parse("stall:3:10")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            _run_through(proxy, server, reference, timeout=1.0)

    def test_truncated_responses_are_survived(self, server, reference):
        plan = NetworkFaultPlan.parse("truncate:2:150")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            _run_through(proxy, server, reference)
            assert proxy.faults["truncate"] >= 1

    def test_mixed_chaos_is_survived(self, server, reference):
        plan = NetworkFaultPlan.parse("drop:5;truncate:3:200")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            _run_through(proxy, server, reference)

    def test_clean_proxy_is_transparent(self, server, reference):
        ref_id, ref_doc, ref_bytes = reference
        with ChaosProxy(
            "127.0.0.1", server.port, NetworkFaultPlan()
        ) as proxy:
            client = _proxied_client(proxy, retries=0)
            assert client.result_bytes(ref_id) == ref_bytes
            assert proxy.connections == 1
            assert sum(proxy.faults.values()) == 0


class TestStreamFallback:
    def test_truncated_event_stream_ends_cleanly(self, server, reference):
        """A mid-event cut ends events() instead of raising."""
        ref_id, _, _ = reference
        direct = ServiceClient("127.0.0.1", server.port)
        full = list(direct.events(ref_id))
        plan = NetworkFaultPlan.parse("truncate:1:180")  # every conn
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            client = _proxied_client(proxy, retries=0)
            partial = list(client.events(ref_id))
        assert len(partial) < len(full)
        # whatever made it through is a verbatim prefix
        assert partial == full[: len(partial)]

    def test_wait_falls_back_to_polling_after_stream_cut(
        self, server, reference
    ):
        """Satellite claim: killing the NDJSON connection mid-event
        leaves wait() with the same terminal job document."""
        ref_id, ref_doc, _ = reference
        plan = NetworkFaultPlan.parse("truncate:2:180")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            client = _proxied_client(proxy)
            final = client.wait(ref_id, timeout=60)
        assert final == ref_doc

    def test_every_connection_dropped_eventually_errors(self, server):
        """Chaos the client cannot survive surfaces, not hangs."""
        plan = NetworkFaultPlan.parse("drop:1")
        with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
            client = _proxied_client(proxy, retries=2)
            with pytest.raises((OSError, http.client.HTTPException)):
                client.status()


class TestServerSideHealth:
    def test_server_unscathed_by_chaos(self, server, reference):
        """After all that, the server still answers everything."""
        client = ServiceClient("127.0.0.1", server.port)
        assert client.healthz() is True
        ready, _ = client.readyz()
        assert ready is True
        status = client.status()
        assert status["breaker"]["state"] == "closed"
        job = client.run(BODY, timeout=120)
        assert job["state"] == "done"

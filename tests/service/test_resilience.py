"""Resilience layer of the sweep service, over live servers.

Covers the production-hardening contract:

* admission control sheds structured 429s (with ``Retry-After``) at
  the pending high-water mark and per-client cap, while admitted jobs
  run to completion;
* ``DELETE /v1/jobs/{id}`` and per-job deadlines kill in-flight cell
  workers and finish the job ``cancelled``;
* graceful drain stops admission, cancels stragglers, and leaves no
  running jobs;
* a tripped circuit breaker serves warm store cells and sheds cold
  work until its half-open probe succeeds;
* ``/v1/healthz`` / ``/v1/readyz`` report liveness vs readiness;
* the client fails fast on non-transient 4xx instead of retrying.

Hang-faulted cells (worker sleeps for an hour) stand in for long
cold work; every test cancels them before the server is torn down, so
the kill path itself is what keeps the suite fast.
"""

from __future__ import annotations

import time

import pytest

from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.server import CircuitBreaker
from repro.workloads.base import TINY

WARM_BENCHMARK = "vpenta"


def _body(benchmark: str, **extra) -> dict:
    return {
        "kind": "simulate",
        "benchmark": benchmark,
        "mechanisms": ["bypass"],
        **extra,
    }


def _hang_body(**extra) -> dict:
    return _body("adi", faults="hang:*:*", **extra)


def _wait_state(client, job_id, predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = client.job(job_id)
        if predicate(doc):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached the awaited state")


def _wait_cell_running(client, job_id):
    return _wait_state(
        client,
        job_id,
        lambda doc: doc["cell_counts"].get("running", 0) >= 1
        or doc["state"] in ("done", "failed", "cancelled"),
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        store=tmp_path_factory.mktemp("resilience-store"),
        jobs=2,
        scale=TINY,
    )
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture
def client(server):
    return ServiceClient("127.0.0.1", server.port)


class TestLifecycle:
    def test_delete_cancels_in_flight_job_and_kills_worker(self, client):
        job = client.submit(_hang_body())
        _wait_cell_running(client, job["id"])
        accepted = client.cancel(job["id"])
        assert accepted["id"] == job["id"]
        started = time.monotonic()
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert final["cancel_reason"] == "cancelled by client request"
        # the hour-long hang died at the kill path, not the sleep
        assert time.monotonic() - started < 30.0
        assert final["cell_counts"].get("cancelled", 0) >= 1

    def test_cancelling_a_terminal_job_is_409(self, client):
        job = client.run(_body(WARM_BENCHMARK), timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job["id"])
        assert excinfo.value.status == 409

    def test_cancellation_is_visible_in_the_event_stream(self, client):
        job = client.submit(_hang_body())
        _wait_cell_running(client, job["id"])
        client.cancel(job["id"])
        client.wait(job["id"], timeout=60)
        events = list(client.events(job["id"]))
        states = [
            event.get("state")
            for event in events
            if event["event"] == "job"
        ]
        assert "cancelling" in states
        assert states[-1] == "cancelled"

    def test_deadline_auto_cancels(self, client):
        job = client.submit(_hang_body(deadline=1.0))
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert "deadline" in final["cancel_reason"]

    def test_invalid_deadline_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(_body(WARM_BENCHMARK, deadline=-1))
        assert excinfo.value.status == 400


class TestHealth:
    def test_healthz_is_alive(self, client):
        assert client.healthz() is True

    def test_readyz_reports_ready_with_breaker_state(self, client):
        ready, doc = client.readyz()
        assert ready is True
        assert doc["draining"] is False
        assert doc["breaker"]["state"] == "closed"

    def test_status_surfaces_admission_and_breaker(self, client):
        status = client.status()
        assert status["admission"]["high_water"] >= 1
        assert status["breaker"]["state"] in (
            "closed",
            "open",
            "half-open",
        )
        assert status["draining"] is False


class TestClientFailFast:
    def test_wait_on_missing_job_raises_immediately(self, client):
        started = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.wait("job-999999", timeout=120)
        assert excinfo.value.status == 404
        # fail-fast: nowhere near the 120s wait budget
        assert time.monotonic() - started < 10.0


class TestAdmissionControl:
    def test_overload_sheds_429_while_admitted_jobs_complete(
        self, tmp_path
    ):
        config = ServiceConfig(
            store=tmp_path / "store",
            jobs=2,
            scale=TINY,
            max_pending=1,
            shed_retry_after=2.5,
        )
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port)
            admitted = client.submit(_hang_body())
            with pytest.raises(ServiceError) as excinfo:
                client.submit(_body(WARM_BENCHMARK))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1.0
            assert "high-water" in excinfo.value.message
            metrics = client.metrics()
            assert metrics["shed_overload"] == 1
            assert metrics["admitted"] == 1
            # the admitted job still completes (here: by cancellation)
            client.cancel(admitted["id"])
            final = client.wait(admitted["id"], timeout=60)
            assert final["state"] == "cancelled"
            # capacity freed: the next submission is admitted and runs
            job = client.run(_body(WARM_BENCHMARK), timeout=120)
            assert job["state"] == "done"

    def test_per_client_cap_keys_on_client_identity(self, tmp_path):
        config = ServiceConfig(
            store=tmp_path / "store",
            jobs=2,
            scale=TINY,
            client_cap=1,
        )
        with BackgroundServer(config) as background:
            alice = ServiceClient(
                "127.0.0.1", background.port, client_id="alice"
            )
            bob = ServiceClient(
                "127.0.0.1", background.port, client_id="bob"
            )
            held = alice.submit(_hang_body())
            with pytest.raises(ServiceError) as excinfo:
                alice.submit(_body(WARM_BENCHMARK))
            assert excinfo.value.status == 429
            assert "alice" in excinfo.value.message
            # a different client is unaffected by alice's cap
            job = bob.run(_body(WARM_BENCHMARK), timeout=120)
            assert job["state"] == "done"
            assert alice.metrics()["shed_client_cap"] == 1
            alice.cancel(held["id"])
            assert alice.wait(held["id"], timeout=60)["state"] == "cancelled"


class TestDrain:
    def test_drain_stops_admission_and_cancels_stragglers(self, tmp_path):
        config = ServiceConfig(
            store=tmp_path / "store", jobs=2, scale=TINY
        )
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port)
            job = client.submit(_hang_body())
            _wait_cell_running(client, job["id"])
            summary = background.drain(budget=0.5)
            assert summary["jobs"] == 1
            assert summary["cancelled"] == 1
            final = client.job(job["id"])
            assert final["state"] == "cancelled"
            assert "drain" in final["cancel_reason"]
            # draining is sticky: no new admissions, not ready
            with pytest.raises(ServiceError) as excinfo:
                client.submit(_body(WARM_BENCHMARK))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after > 0
            ready, doc = client.readyz()
            assert ready is False and doc["draining"] is True
            assert client.metrics()["shed_draining"] == 1

    def test_drain_lets_live_jobs_finish_within_budget(self, tmp_path):
        config = ServiceConfig(
            store=tmp_path / "store", jobs=2, scale=TINY
        )
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port)
            job = client.submit(_body(WARM_BENCHMARK))
            summary = background.drain(budget=120.0)
            assert summary["cancelled"] == 0
            assert summary["finished"] == summary["jobs"]
            final = client.job(job["id"])
            assert final["state"] == "done"
            # the draining event reached the job's stream
            events = list(client.events(job["id"]))
            kinds = {event["event"] for event in events}
            assert final["state"] == "done"
            if summary["jobs"]:
                assert "draining" in kinds


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=2, cooldown=10.0, clock=lambda: clock[0]
        )
        assert breaker.allow_cold()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow_cold()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow_cold()
        assert breaker.retry_after() == 10.0
        clock[0] = 10.5
        assert breaker.allow_cold()  # half-open probe admitted
        assert breaker.state == "half-open"
        assert not breaker.allow_cold()  # one probe at a time
        breaker.record_failure()  # probe failed: reopen
        assert breaker.state == "open" and breaker.trips == 2
        clock[0] = 21.0
        assert breaker.allow_cold()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0
        assert breaker.retry_after() == 0.0

    def test_release_probe_unsticks_a_cancelled_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, cooldown=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 2.0
        assert breaker.allow_cold()
        breaker.release_probe()  # probe cancelled, no verdict
        assert breaker.allow_cold()  # next probe may proceed

    def test_open_breaker_serves_warm_and_sheds_cold(self, tmp_path):
        config = ServiceConfig(
            store=tmp_path / "store",
            jobs=2,
            scale=TINY,
            breaker_threshold=1,
            breaker_cooldown=120.0,
        )
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port)
            # warm the store (and the server's prepared-codes cache)
            warm = client.run(_body(WARM_BENCHMARK), timeout=240)
            assert warm["state"] == "done"
            # trip the breaker: one consecutive scheduler failure
            tripped = client.run(
                _body("swim", faults="exit:swim:*", retries=0),
                timeout=240,
            )
            assert tripped["state"] == "failed"
            assert client.status()["breaker"]["state"] == "open"
            # cold work is shed with a structured 503 + Retry-After
            with pytest.raises(ServiceError) as excinfo:
                client.submit(_body("mgrid"))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after > 0
            assert "breaker" in excinfo.value.message
            # warm cells keep serving from the store
            again = client.run(_body(WARM_BENCHMARK), timeout=120)
            assert again["state"] == "done"
            assert again["cells"][0]["source"] == "store"
            assert client.metrics()["shed_breaker"] == 1
            # degraded mode is visible but the service stays "ready"
            ready, doc = client.readyz()
            assert ready is True
            assert doc["breaker"]["state"] == "open"

    def test_half_open_probe_recovers_the_breaker(self, tmp_path):
        config = ServiceConfig(
            store=tmp_path / "store",
            jobs=2,
            scale=TINY,
            breaker_threshold=1,
            breaker_cooldown=0.2,
        )
        with BackgroundServer(config) as background:
            client = ServiceClient("127.0.0.1", background.port)
            tripped = client.run(
                _body("swim", faults="exit:swim:*", retries=0),
                timeout=240,
            )
            assert tripped["state"] == "failed"
            assert client.status()["breaker"]["trips"] == 1
            time.sleep(0.3)  # past the cooldown: probes admitted
            probe = client.run(_body(WARM_BENCHMARK), timeout=240)
            assert probe["state"] == "done"
            status = client.status()
            assert status["breaker"]["state"] == "closed"
            assert status["breaker"]["consecutive_failures"] == 0

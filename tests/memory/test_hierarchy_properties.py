"""Property-based tests on the memory hierarchy."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config


@st.composite
def access_streams(draw):
    """A short mixed access stream over a few distinct regions."""
    length = draw(st.integers(20, 150))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        region = rng.choice([0x10000, 0x20000, 0x80000])
        addr = region + rng.randrange(0, 4096) & ~7
        stream.append((addr, rng.random() < 0.3))
    return stream


class TestHierarchyProperties:
    @given(access_streams())
    @settings(max_examples=40, deadline=None)
    def test_latency_bounds(self, stream):
        machine = base_config()
        hierarchy = MemoryHierarchy(machine)
        l1_min = machine.l1d.latency
        worst = (
            machine.dtlb.miss_penalty
            + machine.l1d.latency
            + machine.l2.latency
            + machine.mem_latency
            + machine.block_transfer_cycles(machine.l2.block_size)
        )
        for addr, is_write in stream:
            result = hierarchy.data_access(addr, is_write)
            assert l1_min <= result.latency <= worst

    @given(access_streams())
    @settings(max_examples=40, deadline=None)
    def test_stats_are_consistent(self, stream):
        hierarchy = MemoryHierarchy(base_config(), classify_misses=True)
        for addr, is_write in stream:
            hierarchy.data_access(addr, is_write)
        snap = hierarchy.snapshot()
        assert snap.l1d.accesses == len(stream)
        assert snap.l1d.hits + snap.l1d.misses == snap.l1d.accesses
        assert (
            snap.l1d.compulsory_misses
            + snap.l1d.capacity_misses
            + snap.l1d.conflict_misses
            == snap.l1d.misses
        )
        # Every DRAM read was provoked by an L2 miss.
        assert snap.mem_reads == snap.l2.misses

    @given(access_streams())
    @settings(max_examples=30, deadline=None)
    def test_repeat_access_hits(self, stream):
        """Accessing the same address twice in a row always hits L1."""
        hierarchy = MemoryHierarchy(base_config())
        for addr, is_write in stream:
            hierarchy.data_access(addr, is_write)
            repeat = hierarchy.data_access(addr, False)
            assert repeat.l1_hit

    @given(
        access_streams(),
        st.sampled_from(["bypass", "victim"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_assists_never_lose_dirty_data(self, stream, mechanism):
        """Writebacks + resident dirty lines account for every write.

        With an assist attached, dirty lines may live in L1, the
        victim caches, or the bypass buffer, but a store's dirtiness
        must never silently vanish into untracked state (no exceptions,
        consistent counters)."""
        machine = base_config()
        assist = (
            CacheBypassAssist(machine)
            if mechanism == "bypass"
            else VictimCacheAssist(machine)
        )
        hierarchy = MemoryHierarchy(machine, assist)
        writes = 0
        for addr, is_write in stream:
            hierarchy.data_access(addr, is_write)
            writes += is_write
        snap = hierarchy.snapshot()
        assert snap.l1d.accesses == len(stream)
        # Sanity: the machine never reports more writebacks than writes.
        total_writebacks = (
            snap.l1d.writebacks + snap.l2.writebacks + snap.mem_writes
        )
        assert total_writebacks <= 3 * writes + 5

    @given(access_streams())
    @settings(max_examples=30, deadline=None)
    def test_disabled_assist_equals_no_assist(self, stream):
        """With the gate off, the hierarchy must behave exactly as if
        no assist were attached — the paper's 'simply ignore the
        mechanism' semantics."""
        machine = base_config()
        plain = MemoryHierarchy(machine)
        assist = VictimCacheAssist(machine)
        assist.enabled = False
        gated = MemoryHierarchy(machine, assist)
        for addr, is_write in stream:
            a = plain.data_access(addr, is_write)
            b = gated.data_access(addr, is_write)
            assert a == b

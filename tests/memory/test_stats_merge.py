"""CacheStats / HierarchySnapshot arithmetic (merge and delta)."""

from __future__ import annotations

import pytest

from repro.memory.stats import CacheStats, HierarchySnapshot, clone_stats


def _stats(**overrides) -> CacheStats:
    values = dict(
        accesses=100,
        hits=80,
        misses=20,
        evictions=5,
        writebacks=2,
        compulsory_misses=10,
        capacity_misses=6,
        conflict_misses=4,
    )
    values.update(overrides)
    return CacheStats(**values)


def _snapshot(scale: int = 1) -> HierarchySnapshot:
    return HierarchySnapshot(
        l1d=_stats(accesses=100 * scale, misses=20 * scale),
        l1i=_stats(accesses=50 * scale),
        l2=_stats(accesses=20 * scale),
        dtlb_misses=3 * scale,
        itlb_misses=1 * scale,
        mem_reads=7 * scale,
        mem_writes=2 * scale,
        assist_hits=4 * scale,
        bypassed_fills=6 * scale,
        prefetched_blocks=0,
    )


class TestCacheStatsArithmetic:
    def test_add_is_fieldwise(self):
        merged = _stats() + _stats(accesses=10, misses=1)
        assert merged.accesses == 110
        assert merged.misses == 21
        assert merged.hits == 160

    def test_sum_over_list(self):
        total = sum([_stats(), _stats(), _stats()])
        assert isinstance(total, CacheStats)
        assert total.accesses == 300

    def test_sub_recovers_interval_delta(self):
        later = _stats(accesses=150, misses=33)
        earlier = _stats()
        delta = later - earlier
        assert delta.accesses == 50
        assert delta.misses == 13
        assert earlier + delta == later

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            _stats() + 1

    def test_radd_zero_returns_clone(self):
        stats = _stats()
        total = sum([stats])
        assert total == stats
        assert total is not stats

    def test_reset_zeroes_every_field(self):
        stats = _stats()
        stats.reset()
        assert stats == CacheStats()

    def test_clone_is_independent(self):
        original = _stats()
        copy = clone_stats(original)
        copy.accesses += 1
        assert original.accesses == 100


class TestHierarchySnapshotArithmetic:
    def test_add_and_sum(self):
        total = sum([_snapshot(), _snapshot(2)])
        assert total.l1d.accesses == 300
        assert total.mem_reads == 21
        assert total.bypassed_fills == 18

    def test_sub_then_add_round_trips(self):
        earlier, later = _snapshot(1), _snapshot(3)
        delta = later - earlier
        assert delta.l1d.misses == 40
        assert earlier + delta == later

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            _snapshot() + 5

"""Tests for the column-associative cache extension."""

import random

import pytest

from repro.memory.cache import SetAssociativeCache
from repro.memory.column import ColumnAssociativeCache
from repro.params import CacheParams


def make(sets=8, block=32):
    return ColumnAssociativeCache(
        CacheParams("CA", sets * block, 1, block, 1)
    )


class TestColumnAssociative:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(CacheParams("bad", 1024, 2, 32, 1))

    def test_basic_hit(self):
        cache = make()
        cache.fill(0x100)
        assert cache.lookup(0x100)

    def test_rehash_resolves_conflict(self):
        cache = make(sets=8)
        # Lines 0 and 8 share primary index 0; the rehash slot (index 4)
        # keeps both resident.
        cache.fill(0 * 32)
        cache.fill(8 * 32)
        assert cache.lookup(0 * 32)
        assert cache.lookup(8 * 32)
        assert cache.rehash_hits >= 1

    def test_swap_promotes_hot_line(self):
        cache = make(sets=8)
        cache.fill(0 * 32)
        cache.fill(8 * 32)      # line 0 displaced to rehash slot
        cache.lookup(0 * 32)     # rehash hit: swap back to primary
        # Now line 0 hits on the first probe (no rehash increment).
        before = cache.rehash_hits
        assert cache.lookup(0 * 32)
        assert cache.rehash_hits == before

    def test_eviction_from_rehash_slot(self):
        cache = make(sets=8)
        cache.fill(0 * 32)
        cache.fill(8 * 32)
        evicted = cache.fill(16 * 32)  # third conflicting line
        assert evicted is not None

    def test_dirty_writeback_counted(self):
        cache = make(sets=8)
        cache.fill(0 * 32)
        cache.lookup(0 * 32, is_write=True)
        cache.fill(8 * 32)
        cache.fill(16 * 32)
        assert cache.stats.writebacks >= 1

    def test_beats_direct_mapped_on_conflicts(self):
        """The Agarwal & Pudar result: fewer conflict misses than a
        direct-mapped cache of the same size on a ping-pong pattern."""
        params = CacheParams("DM", 8 * 32, 1, 32, 1)
        direct = SetAssociativeCache(params)
        column = make(sets=8)
        rng = random.Random(3)
        addresses = []
        for _ in range(600):
            # Two streams that collide in a direct-mapped cache.
            base = rng.choice([0x0000, 0x0100])
            addresses.append(base + rng.randrange(4) * 32)
        for cache in (direct, column):
            for addr in addresses:
                if not cache.lookup(addr):
                    cache.fill(addr)
        assert column.stats.misses < direct.stats.misses

    def test_occupancy_bounded(self):
        cache = make(sets=4)
        for line in range(32):
            if not cache.lookup(line * 32):
                cache.fill(line * 32)
        assert cache.occupancy() <= 4

"""Unit tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.params import CacheParams


def small_cache(assoc=2, sets=4, block=32, classify=False):
    params = CacheParams("T", assoc * sets * block, assoc, block, 1)
    return SetAssociativeCache(params, classify_misses=classify)


class TestBasics:
    def test_miss_then_hit_after_fill(self):
        cache = small_cache()
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)

    def test_same_line_offsets_hit(self):
        cache = small_cache(block=32)
        cache.fill(0x100)
        for offset in (0, 8, 16, 31):
            assert cache.lookup(0x100 + offset)

    def test_adjacent_line_misses(self):
        cache = small_cache(block=32)
        cache.fill(0x100)
        assert not cache.lookup(0x100 + 32)

    def test_probe_does_not_touch_state(self):
        cache = small_cache()
        cache.fill(0x100)
        accesses = cache.stats.accesses
        assert cache.probe(0x100)
        assert not cache.probe(0x200)
        assert cache.stats.accesses == accesses

    def test_stats_count_hits_and_misses(self):
        cache = small_cache()
        cache.lookup(0)          # miss
        cache.fill(0)
        cache.lookup(0)          # hit
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestLRU:
    def test_eviction_is_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0 * 32)
        cache.fill(1 * 32)
        cache.lookup(0 * 32)      # refresh line 0: line 1 is now LRU
        evicted = cache.fill(2 * 32)
        assert evicted is not None
        assert evicted.block_addr == 1

    def test_lru_order_reported(self):
        cache = small_cache(assoc=4, sets=1)
        for line in range(4):
            cache.fill(line * 32)
        cache.lookup(0)
        assert cache.lru_order(0) == [1, 2, 3, 0]

    def test_fill_existing_refreshes(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0 * 32)
        cache.fill(1 * 32)
        cache.fill(0 * 32)  # refresh, not insert
        evicted = cache.fill(2 * 32)
        assert evicted.block_addr == 1

    def test_victim_candidate_matches_eviction(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0 * 32)
        cache.fill(1 * 32)
        candidate = cache.victim_candidate(2 * 32)
        evicted = cache.fill(2 * 32)
        assert candidate == evicted.block_addr

    def test_victim_candidate_none_when_free_way(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0 * 32)
        assert cache.victim_candidate(1 * 32) is None

    def test_victim_candidate_none_when_resident(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0 * 32)
        cache.fill(1 * 32)
        assert cache.victim_candidate(0 * 32) is None


class TestDirty:
    def test_write_hit_sets_dirty_and_writeback_counted(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0)
        cache.lookup(0, is_write=True)
        evicted = cache.fill(32)
        assert evicted.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0)
        cache.fill(32)
        assert cache.stats.writebacks == 0

    def test_invalidate_returns_block(self):
        cache = small_cache()
        cache.fill(0x40, dirty=True)
        block = cache.invalidate(0x40)
        assert block is not None and block.dirty
        assert not cache.probe(0x40)

    def test_flush_reports_dirty_lines(self):
        cache = small_cache()
        cache.fill(0, dirty=True)
        cache.fill(32, dirty=False)
        assert cache.flush() == 1
        assert cache.occupancy() == 0


class TestMissClassification:
    def test_first_touch_is_compulsory(self):
        cache = small_cache(classify=True)
        cache.lookup(0x100)
        assert cache.stats.compulsory_misses == 1

    def test_conflict_miss_detected(self):
        # Direct-mapped, 2 sets: lines 0 and 2 collide; shadow (FA,
        # 2 blocks) would have held both -> the re-miss is a conflict.
        cache = small_cache(assoc=1, sets=2, classify=True)
        cache.lookup(0 * 32); cache.fill(0 * 32)
        cache.lookup(2 * 32); cache.fill(2 * 32)   # evicts line 0
        cache.lookup(0 * 32)                        # conflict miss
        assert cache.stats.conflict_misses == 1

    def test_capacity_miss_detected(self):
        # FA shadow of 2 blocks; touching 3 lines round-robin exceeds
        # capacity, so re-misses classify as capacity.
        cache = small_cache(assoc=1, sets=2, classify=True)
        for line in (0, 1, 2):
            cache.lookup(line * 32); cache.fill(line * 32)
        cache.lookup(0 * 32)
        assert cache.stats.capacity_misses == 1

    def test_classification_partitions_misses(self):
        cache = small_cache(assoc=2, sets=2, classify=True)
        import random
        rng = random.Random(7)
        for _ in range(500):
            addr = rng.randrange(0, 64) * 32
            if not cache.lookup(addr):
                cache.fill(addr)
        stats = cache.stats
        assert (
            stats.compulsory_misses
            + stats.capacity_misses
            + stats.conflict_misses
            == stats.misses
        )


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                 max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = small_cache(assoc=2, sets=4)
        for addr in addrs:
            if not cache.lookup(addr):
                cache.fill(addr)
        assert cache.occupancy() <= cache.params.num_blocks
        # Every resident line maps to the set it is stored in.
        for set_index in range(cache.params.num_sets):
            for line in cache.lru_order(set_index):
                assert line % cache.params.num_sets == set_index

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                 max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_after_fill_always_hits(self, addrs):
        cache = small_cache(assoc=4, sets=8)
        for addr in addrs:
            if not cache.lookup(addr):
                cache.fill(addr)
            assert cache.probe(addr)  # just-filled/hit line is resident

    @given(st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=100, deadline=None)
    def test_hits_equal_accesses_minus_misses(self, seed):
        import random
        rng = random.Random(seed)
        cache = small_cache()
        for _ in range(100):
            addr = rng.randrange(0, 1 << 12)
            if not cache.lookup(addr):
                cache.fill(addr)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


class TestParamsValidation:
    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            CacheParams("bad", 1024, 2, 33, 1)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheParams("bad", 1000, 2, 32, 1)

    def test_geometry_accessors(self):
        params = CacheParams("ok", 32 * 1024, 4, 32, 2)
        assert params.num_blocks == 1024
        assert params.num_sets == 256

"""Unit tests for victim cache, TLB, and DRAM model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.block import CacheBlock
from repro.memory.dram import MainMemory
from repro.memory.tlb import TLB
from repro.memory.victim import VictimCache
from repro.params import MachineParams, TLBParams


class TestVictimCache:
    def test_insert_then_extract(self):
        victim = VictimCache(4)
        victim.insert(CacheBlock(10))
        block = victim.extract(10)
        assert block is not None and block.block_addr == 10
        assert not victim.contains(10)  # extraction removes

    def test_extract_miss_counted(self):
        victim = VictimCache(4)
        assert victim.extract(99) is None
        assert victim.stats.misses == 1

    def test_lru_displacement(self):
        victim = VictimCache(2)
        victim.insert(CacheBlock(1))
        victim.insert(CacheBlock(2))
        displaced = victim.insert(CacheBlock(3))
        assert displaced.block_addr == 1

    def test_displaced_dirty_counts_writeback(self):
        victim = VictimCache(1)
        victim.insert(CacheBlock(1, dirty=True))
        victim.insert(CacheBlock(2))
        assert victim.stats.writebacks == 1

    def test_reinsert_merges_dirty(self):
        victim = VictimCache(2)
        victim.insert(CacheBlock(5, dirty=False))
        assert victim.insert(CacheBlock(5, dirty=True)) is None
        block = victim.extract(5)
        assert block.dirty

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            VictimCache(0)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, lines):
        victim = VictimCache(8)
        for line in lines:
            victim.insert(CacheBlock(line))
        assert len(victim) <= 8


class TestTLB:
    def test_miss_then_hit_same_page(self):
        tlb = TLB(TLBParams("T", 16, 4))
        assert not tlb.lookup(0x1234)
        assert tlb.lookup(0x1FFF)  # same 4K page

    def test_different_pages_miss(self):
        tlb = TLB(TLBParams("T", 16, 4))
        tlb.lookup(0x0000)
        assert not tlb.lookup(0x100000)

    def test_lru_within_set(self):
        # 4 entries, assoc 4 -> single set.
        tlb = TLB(TLBParams("T", 4, 4, page_size=4096))
        for page in range(4):
            tlb.lookup(page * 4096)
        tlb.lookup(0)              # refresh page 0
        tlb.lookup(4 * 4096)       # evicts page 1
        assert tlb.lookup(0)       # still resident
        assert not tlb.lookup(1 * 4096)

    def test_miss_rate(self):
        tlb = TLB(TLBParams("T", 16, 4))
        tlb.lookup(0)
        tlb.lookup(0)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            TLBParams("bad", 10, 4)  # not divisible
        with pytest.raises(ValueError):
            TLBParams("bad", 16, 4, page_size=1000)


class TestMainMemory:
    def test_read_latency_includes_transfer(self):
        machine = MachineParams()
        memory = MainMemory(machine)
        # 128-byte L2 block over an 8-byte bus: 100 + 15 extra beats.
        assert memory.read_block(128) == 115
        assert memory.reads == 1

    def test_write_is_buffered(self):
        memory = MainMemory(MachineParams())
        assert memory.write_block(128) == 0
        assert memory.writes == 1

    def test_transfer_cycles_formula(self):
        machine = MachineParams()
        assert machine.block_transfer_cycles(8) == 0
        assert machine.block_transfer_cycles(32) == 3
        assert machine.block_transfer_cycles(128) == 15

"""Integration tests for the memory hierarchy."""

import pytest

from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config


@pytest.fixture
def machine():
    return base_config()


class TestDataPath:
    def test_l1_hit_latency(self, machine):
        h = MemoryHierarchy(machine)
        h.data_access(0x1000)  # warm (includes TLB miss)
        result = h.data_access(0x1000)
        assert result.l1_hit
        assert result.latency == machine.l1d.latency
        assert result.served_by == "l1"

    def test_cold_miss_goes_to_memory(self, machine):
        h = MemoryHierarchy(machine)
        result = h.data_access(0x4000)
        assert not result.l1_hit
        assert result.served_by == "mem"
        assert result.latency >= machine.mem_latency

    def test_l2_hit_after_l1_eviction(self, machine):
        h = MemoryHierarchy(machine)
        base = 0x100000
        h.data_access(base)
        # Evict base from L1 by filling its set (L1: 256 sets, 4 ways;
        # same-set lines are 8 KB apart).
        span = machine.l1d.num_sets * machine.l1d.block_size
        for way in range(1, 5):
            h.data_access(base + way * span)
        result = h.data_access(base)
        assert result.served_by == "l2"
        assert (
            result.latency
            == machine.l1d.latency + machine.l2.latency
        )

    def test_tlb_miss_penalty_added(self, machine):
        h = MemoryHierarchy(machine)
        first = h.data_access(0x200000)
        h2 = MemoryHierarchy(machine)
        h2.dtlb.lookup(0x200000)  # pre-warm the page
        second = h2.data_access(0x200000)
        assert first.latency == second.latency + machine.dtlb.miss_penalty

    def test_write_allocates_and_dirties(self, machine):
        h = MemoryHierarchy(machine)
        h.data_access(0x3000, is_write=True)
        assert h.l1d.probe(0x3000)
        line = h.l1d.line_of(0x3000)
        # Evicting the dirty line must count a writeback.
        span = machine.l1d.num_sets * machine.l1d.block_size
        for way in range(1, 5):
            h.data_access(0x3000 + way * span)
        assert h.l1d.stats.writebacks == 1

    def test_snapshot_counts(self, machine):
        h = MemoryHierarchy(machine)
        for i in range(10):
            h.data_access(0x1000 + 64 * i)
        snap = h.snapshot()
        assert snap.l1d.accesses == 10
        assert snap.mem_reads > 0


class TestInstructionPath:
    def test_ifetch_hits_after_warm(self, machine):
        h = MemoryHierarchy(machine)
        h.inst_fetch(0x400000)
        assert h.inst_fetch(0x400000) == machine.l1i.latency

    def test_ifetch_separate_from_data(self, machine):
        h = MemoryHierarchy(machine)
        h.inst_fetch(0x400000)
        assert not h.l1d.probe(0x400000)
        assert h.l1i.probe(0x400000)


class TestAssistGating:
    def test_disabled_assist_is_ignored(self, machine):
        assist = VictimCacheAssist(machine)
        assist.enabled = False
        h = MemoryHierarchy(machine, assist)
        span = machine.l1d.num_sets * machine.l1d.block_size
        h.data_access(0x100000)
        for way in range(1, 5):
            h.data_access(0x100000 + way * span)
        # With the mechanism off, the eviction must not be captured.
        assert len(assist.l1_victim) == 0

    def test_enabled_victim_captures_evictions(self, machine):
        assist = VictimCacheAssist(machine)
        h = MemoryHierarchy(machine, assist)
        span = machine.l1d.num_sets * machine.l1d.block_size
        h.data_access(0x100000)
        for way in range(1, 5):
            h.data_access(0x100000 + way * span)
        assert len(assist.l1_victim) >= 1

    def test_victim_hit_swaps_back_into_l1(self, machine):
        assist = VictimCacheAssist(machine)
        h = MemoryHierarchy(machine, assist)
        span = machine.l1d.num_sets * machine.l1d.block_size
        h.data_access(0x100000)
        for way in range(1, 5):
            h.data_access(0x100000 + way * span)
        assert not h.l1d.probe(0x100000)
        result = h.data_access(0x100000)
        assert result.served_by == "assist"
        assert result.latency == machine.l1d.latency + 1
        assert h.l1d.probe(0x100000)

    def test_bypass_assist_attaches(self, machine):
        assist = CacheBypassAssist(machine)
        h = MemoryHierarchy(machine, assist)
        for i in range(100):
            h.data_access(0x100000 + i * 8)
        snap = h.snapshot()
        assert snap.l1d.accesses == 100


class TestInstanceIsolation:
    def test_last_source_not_shared_between_instances(self, machine):
        """Provenance state must live on the instance, not the class.

        Two hierarchies run side by side (parallel sweeps, tests); a
        class-level ``_last_source`` would leak the last access's
        provenance from one into the other.
        """
        a = MemoryHierarchy(machine)
        b = MemoryHierarchy(machine)
        assert "_last_source" not in MemoryHierarchy.__dict__
        # Drive `a` to an L2 hit: miss once (fills L2+L1), evict from
        # L1 is irrelevant — a fresh address misses L1 but hits L2 after
        # the first fill.
        a.data_access(0x8000)
        a._last_source = "l2"
        assert b._last_source == "mem"
        result_b = b.data_access(0x8000)
        assert result_b.served_by == "mem"
        assert a._last_source == "l2"

"""Coverage for smaller paths: L2 victim integration, scales, misc."""


from repro.hwopt.controller import VictimCacheAssist
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config
from repro.workloads.base import MEDIUM, SMALL, TINY
from repro.workloads.registry import all_specs


class TestL2VictimIntegration:
    def test_l2_victim_recovers_l2_eviction(self):
        machine = base_config()
        assist = VictimCacheAssist(machine)
        hierarchy = MemoryHierarchy(machine, assist)
        # Fill one L2 set (4 ways) plus one: same L2 set = addresses
        # a way-span apart (128 KB for 512K/4w/128B).
        span = machine.l2.num_sets * machine.l2.block_size
        base = 0x1000000
        hierarchy.data_access(base)
        for way in range(1, 5):
            hierarchy.data_access(base + way * span)
        assert len(assist.l2_victim) >= 1
        # The original line was evicted from L1 (into the L1 victim)
        # and from L2 (into the L2 victim): whichever assist level
        # serves the re-access, DRAM must not be touched again.
        reads_before = hierarchy.memory.reads
        result = hierarchy.data_access(base)
        assert result.served_by != "mem"
        assert hierarchy.memory.reads == reads_before

    def test_l2_victim_capacity_respected(self):
        machine = base_config()
        assist = VictimCacheAssist(machine)
        assert assist.l2_victim.entries == machine.victim.l2_entries


class TestScales:
    def test_all_scales_instantiate_all_benchmarks(self):
        # Program construction only (tracing MEDIUM is a benchmark-time
        # activity, not a unit-test one).
        for scale in (TINY, SMALL, MEDIUM):
            for spec in all_specs():
                program = spec.instantiate(scale)
                assert program.arrays
                assert program.body

    def test_scales_ordered(self):
        assert TINY.n2d < SMALL.n2d < MEDIUM.n2d
        assert TINY.n1d < SMALL.n1d < MEDIUM.n1d

    def test_footprints_grow_with_scale(self):
        small = all_specs()[0].instantiate(SMALL)
        medium = all_specs()[0].instantiate(MEDIUM)
        assert (
            medium.total_footprint_bytes() > small.total_footprint_bytes()
        )


class TestSnapshotImmutability:
    def test_snapshot_does_not_alias_live_stats(self):
        machine = base_config()
        hierarchy = MemoryHierarchy(machine)
        hierarchy.data_access(0x1000)
        snap = hierarchy.snapshot()
        before = snap.l1d.accesses
        hierarchy.data_access(0x2000)
        assert snap.l1d.accesses == before  # frozen copy

"""Tests for the stream-buffer prefetch extension."""

import pytest

from repro.hwopt.gate import HardwareGate
from repro.hwopt.prefetch import StreamBufferAssist
from repro.cpu.pipeline import CPUSimulator
from repro.isa.trace import TraceBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config


@pytest.fixture
def machine():
    return base_config()


class TestStreamBuffer:
    def test_allocation_on_miss(self, machine):
        assist = StreamBufferAssist(machine, buffers=2, depth=4)
        assert assist.lookup_alternate(0x1000, 0x1000 // 32) is None
        # A stream was allocated starting at the next line.
        assert assist.prefetched_blocks == 4

    def test_sequential_misses_hit_buffer(self, machine):
        assist = StreamBufferAssist(machine, buffers=2, depth=4)
        line = 0x1000 // 32
        assist.lookup_alternate(0x1000, line)          # allocate
        served = assist.lookup_alternate(0x1020, line + 1)
        assert served is not None
        latency, block = served
        assert latency == 1
        assert block.block_addr == line + 1
        assert assist.assist_hits == 1

    def test_stream_advances(self, machine):
        assist = StreamBufferAssist(machine, buffers=1, depth=2)
        line = 0
        assist.lookup_alternate(0, 0)                   # stream: 1,2
        assert assist.lookup_alternate(32, 1) is not None   # stream: 2,3
        assert assist.lookup_alternate(64, 2) is not None   # stream: 3,4
        assert assist.lookup_alternate(96, 3) is not None

    def test_lru_buffer_reallocation(self, machine):
        assist = StreamBufferAssist(machine, buffers=1, depth=2)
        assist.lookup_alternate(0x1000, 0x1000 // 32)
        assist.lookup_alternate(0x9000, 0x9000 // 32)  # steals the buffer
        # The old stream is gone.
        assert assist.lookup_alternate(0x1020, 0x1000 // 32 + 1) is None

    def test_never_bypasses_or_captures(self, machine):
        from repro.memory.block import CacheBlock
        assist = StreamBufferAssist(machine)
        assert assist.fill_decision(0, None).cache_in_l1
        block = CacheBlock(5)
        assert assist.on_l1_evict(block) is block
        assert assist.bypassed_fills == 0

    def test_bad_geometry(self, machine):
        with pytest.raises(ValueError):
            StreamBufferAssist(machine, buffers=0)

    def test_speeds_up_streaming_trace(self, machine):
        def run(assist):
            hierarchy = MemoryHierarchy(machine, assist)
            sim = CPUSimulator(
                machine, hierarchy, HardwareGate(assist),
                model_ifetch=False,
            )
            tb = TraceBuilder("stream")
            for i in range(4096):
                tb.load(0x100000 + i * 8)
            return sim.run(tb.build())

        plain = run(None)
        prefetched = run(StreamBufferAssist(machine))
        assert prefetched.cycles < plain.cycles
        assert prefetched.memory.assist_hits > 100

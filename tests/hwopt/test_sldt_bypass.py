"""Unit tests for the SLDT and the bypass buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwopt.bypass import BypassBuffer
from repro.hwopt.sldt import SpatialLocalityDetector
from repro.params import BypassParams


class TestSLDT:
    def make(self, entries=4):
        params = BypassParams(sldt_entries=entries, spatial_threshold=2)
        return SpatialLocalityDetector(params, line_size=32)

    def test_unknown_block_not_spatial(self):
        sldt = self.make()
        assert sldt.spatial_quality(0x9000) == 0
        assert not sldt.expects_spatial(0x9000)

    def test_sequential_touches_promote(self):
        sldt = self.make(entries=2)
        # Touch several words of each line; retirements judge spatial.
        for line in range(8):
            base = line * 32
            for word in range(4):
                sldt.observe(base + word * 8)
        sldt.flush_judgements()
        assert sldt.expects_spatial(0)
        assert sldt.spatial_promotions > 0

    def test_single_word_touches_demote(self):
        sldt = self.make(entries=2)
        for line in range(8):
            sldt.observe(line * 32)  # one word per line
        sldt.flush_judgements()
        assert sldt.spatial_quality(0) < 0
        assert not sldt.expects_spatial(0)

    def test_counter_saturates_at_bounds(self):
        params = BypassParams(
            sldt_entries=1, spatial_counter_max=3, spatial_counter_min=-2
        )
        sldt = SpatialLocalityDetector(params, line_size=32)
        for line in range(50):
            sldt.observe(line * 32)
        sldt.flush_judgements()
        assert sldt.spatial_quality(0) == -2

    def test_line_size_must_exceed_word(self):
        with pytest.raises(ValueError):
            SpatialLocalityDetector(BypassParams(), line_size=8)


class TestBypassBuffer:
    def test_insert_then_hit(self):
        buffer = BypassBuffer(4)
        buffer.insert(0x100)
        assert buffer.lookup(0x100)
        assert buffer.hits == 1

    def test_dword_granularity(self):
        buffer = BypassBuffer(4)
        buffer.insert(0x100)
        assert buffer.lookup(0x104)       # same double word
        assert not buffer.lookup(0x108)   # next double word: miss

    def test_lru_displacement_returns_dirty_addr(self):
        buffer = BypassBuffer(2)
        buffer.insert(0x100, dirty=True)
        buffer.insert(0x200)
        displaced = buffer.insert(0x300)
        assert displaced == 0x100

    def test_clean_displacement_returns_none(self):
        buffer = BypassBuffer(1)
        buffer.insert(0x100, dirty=False)
        assert buffer.insert(0x200) is None

    def test_write_hit_marks_dirty(self):
        buffer = BypassBuffer(2)
        buffer.insert(0x100)
        buffer.lookup(0x100, is_write=True)
        buffer.insert(0x200)
        displaced = buffer.insert(0x300)
        assert displaced == 0x100  # became dirty via the write hit

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BypassBuffer(0)

    @given(st.lists(st.integers(0, 1 << 12), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_capacity_invariant(self, addrs):
        buffer = BypassBuffer(8)
        for addr in addrs:
            buffer.insert(addr)
        assert len(buffer) <= 8

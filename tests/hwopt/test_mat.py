"""Unit tests for the Memory Access Table."""

from repro.hwopt.mat import MemoryAccessTable
from repro.params import BypassParams


def make_mat(**kwargs):
    return MemoryAccessTable(BypassParams(), **kwargs)


class TestCounting:
    def test_frequency_zero_untracked(self):
        mat = make_mat()
        assert mat.frequency(0x5000) == 0

    def test_record_increments(self):
        mat = make_mat()
        for _ in range(5):
            mat.record(0x5000)
        assert mat.frequency(0x5000) == 5

    def test_same_macro_block_shares_counter(self):
        mat = make_mat()
        mat.record(0x5000)
        mat.record(0x53F8)  # same 1 KB macro-block
        assert mat.frequency(0x5000) == 2

    def test_different_macro_blocks_independent(self):
        mat = make_mat()
        mat.record(0x5000)
        mat.record(0x5400)  # next macro-block
        assert mat.frequency(0x5000) == 1
        assert mat.frequency(0x5400) == 1

    def test_counter_saturates(self):
        mat = make_mat(counter_max=10, age_interval=10_000)
        for _ in range(50):
            mat.record(0)
        assert mat.frequency(0) == 10


class TestTagReplacement:
    def test_colliding_macro_block_replaces(self):
        mat = make_mat()
        entries = BypassParams().mat_entries
        mb_size = BypassParams().macro_block_size
        mat.record(0)
        collider = entries * mb_size  # same slot, different tag
        mat.record(collider)
        assert mat.frequency(0) == 0          # history lost
        assert mat.frequency(collider) == 1
        assert mat.replacements == 1

    def test_occupancy_counts_live_tags(self):
        mat = make_mat()
        mat.record(0)
        mat.record(1024)
        assert mat.occupancy() == 2


class TestAging:
    def test_aging_halves_counters(self):
        mat = make_mat(age_interval=10)
        for _ in range(9):
            mat.record(0)
        assert mat.frequency(0) == 9
        mat.record(0)  # 10th record triggers aging after increment
        assert mat.frequency(0) == 5  # 10 >> 1

    def test_aging_forgets_phases(self):
        """A block hot in an old phase decays to lukewarm — the staleness
        the paper's selective scheme exploits (Section 5.1)."""
        mat = make_mat(age_interval=100)
        for _ in range(99):
            mat.record(0)
        # Switch phase: hammer a different block through several agings.
        for _ in range(400):
            mat.record(4096)
        assert mat.frequency(0) < 10

"""Unit tests for the two hardware assists and the ON/OFF gate."""

import pytest

from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.hwopt.gate import HardwareGate
from repro.memory.block import CacheBlock
from repro.params import base_config


@pytest.fixture
def machine():
    return base_config()


class TestCacheBypassAssist:
    def test_free_way_always_caches(self, machine):
        assist = CacheBypassAssist(machine)
        decision = assist.fill_decision(0x1000, victim_line=None)
        assert decision.cache_in_l1

    def test_bypass_requires_hot_victim(self, machine):
        assist = CacheBypassAssist(machine)
        # Victim macro-block untrained: frequency 0 < min_victim_freq.
        decision = assist.fill_decision(0x1000, victim_line=0x2000 // 32)
        assert decision.cache_in_l1

    def test_bypass_fires_for_cold_incoming_hot_victim(self, machine):
        assist = CacheBypassAssist(machine)
        victim_addr = 0x2000
        for _ in range(64):
            assist.mat.record(victim_addr)
        # Keep the victim looking non-spatial (single-word touches).
        decision = assist.fill_decision(
            0x80000, victim_line=victim_addr // 32
        )
        assert not decision.cache_in_l1

    def test_no_bypass_when_incoming_also_hot(self, machine):
        assist = CacheBypassAssist(machine)
        for _ in range(64):
            assist.mat.record(0x2000)
            assist.mat.record(0x80000)
        decision = assist.fill_decision(0x80000, victim_line=0x2000 // 32)
        assert decision.cache_in_l1

    def test_spatial_incoming_never_bypassed(self, machine):
        assist = CacheBypassAssist(machine)
        for _ in range(64):
            assist.mat.record(0x2000)
        # Teach the SLDT that the incoming macro-block is spatial.
        for line in range(16):
            for word in range(4):
                assist.sldt.observe(0x80000 + line * 32 + word * 8)
        assist.sldt.flush_judgements()
        assert assist.sldt.expects_spatial(0x80000)
        decision = assist.fill_decision(0x80000, victim_line=0x2000 // 32)
        assert decision.cache_in_l1

    def test_spatial_victim_not_protected(self, machine):
        """A streaming victim's lines are dead; evicting them is fine."""
        assist = CacheBypassAssist(machine)
        victim_addr = 0x2000
        for _ in range(64):
            assist.mat.record(victim_addr)
        for line in range(16):
            for word in range(4):
                assist.sldt.observe(victim_addr + line * 32 + word * 8)
        assist.sldt.flush_judgements()
        decision = assist.fill_decision(
            0x80000, victim_line=victim_addr // 32
        )
        assert decision.cache_in_l1

    def test_bypassed_data_served_from_buffer(self, machine):
        assist = CacheBypassAssist(machine)
        assist.accept_bypassed(0x3000, CacheBlock(0x3000 // 32))
        served = assist.lookup_alternate(0x3000, 0x3000 // 32)
        assert served is not None
        extra_latency, promoted = served
        assert extra_latency == 1
        assert promoted is None  # bypass buffer serves in place
        assert assist.assist_hits == 1

    def test_buffer_miss_returns_none(self, machine):
        assist = CacheBypassAssist(machine)
        assert assist.lookup_alternate(0x3000, 0x3000 // 32) is None

    def test_note_access_trains_mat_and_sldt(self, machine):
        assist = CacheBypassAssist(machine)
        assist.note_access(0x4000, is_write=False, l1_hit=True)
        assert assist.mat.frequency(0x4000) == 1

    def test_evictions_not_captured(self, machine):
        assist = CacheBypassAssist(machine)
        block = CacheBlock(7, dirty=True)
        assert assist.on_l1_evict(block) is block


class TestVictimCacheAssist:
    def test_eviction_capture_and_swap(self, machine):
        assist = VictimCacheAssist(machine)
        assert assist.on_l1_evict(CacheBlock(42)) is None
        served = assist.lookup_alternate(42 * 32, 42)
        assert served is not None
        extra_latency, promoted = served
        assert extra_latency == 1
        assert promoted.block_addr == 42  # promoted back into L1

    def test_write_on_victim_hit_dirties(self, machine):
        assist = VictimCacheAssist(machine)
        assist.on_l1_evict(CacheBlock(42, dirty=False))
        _lat, promoted = assist.lookup_alternate(42 * 32, 42, is_write=True)
        assert promoted.dirty

    def test_l2_victim_path(self, machine):
        assist = VictimCacheAssist(machine)
        assert assist.on_l2_evict(CacheBlock(9)) is None
        assert assist.lookup_l2_alternate(9) is not None
        assert assist.lookup_l2_alternate(9) is None  # removed by hit

    def test_never_bypasses(self, machine):
        assist = VictimCacheAssist(machine)
        decision = assist.fill_decision(0x1000, victim_line=5)
        assert decision.cache_in_l1
        assert decision.extra_blocks == 0

    def test_counters(self, machine):
        assist = VictimCacheAssist(machine)
        assert assist.bypassed_fills == 0
        assert assist.prefetched_blocks == 0


class TestHardwareGate:
    def test_initial_state_applied(self, machine):
        assist = VictimCacheAssist(machine)
        HardwareGate(assist, initially_on=False)
        assert not assist.enabled

    def test_toggle_counting(self, machine):
        assist = VictimCacheAssist(machine)
        gate = HardwareGate(assist, initially_on=False)
        gate.activate()
        gate.deactivate()
        gate.activate()
        assert assist.enabled
        assert gate.activations == 2
        assert gate.deactivations == 1
        assert gate.toggles == 3

    def test_gate_without_assist_is_safe(self):
        gate = HardwareGate(None)
        gate.activate()
        gate.deactivate()
        assert not gate.enabled

"""Tests for the machine-parameter definitions."""

import dataclasses

import pytest

from repro.params import (
    SENSITIVITY_CONFIGS,
    CacheParams,
    MachineParams,
    base_config,
    higher_l1_assoc,
    higher_l2_assoc,
    higher_mem_latency,
    larger_l1,
    larger_l2,
)

KB = 1024


class TestTable1Fidelity:
    """The base configuration must match the paper's Table 1."""

    def test_caches(self):
        m = base_config()
        assert (m.l1d.size, m.l1d.assoc, m.l1d.block_size) == (32 * KB, 4, 32)
        assert (m.l1i.size, m.l1i.assoc, m.l1i.block_size) == (32 * KB, 4, 32)
        assert (m.l2.size, m.l2.assoc, m.l2.block_size) == (512 * KB, 4, 128)

    def test_latencies(self):
        m = base_config()
        assert m.l1d.latency == 2
        assert m.l2.latency == 10
        assert m.mem_latency == 100

    def test_core(self):
        m = base_config()
        assert m.issue_width == 4
        assert m.mem_bus_width == 8
        assert m.mem_ports == 2
        assert m.ruu_entries == 64
        assert m.lsq_entries == 32
        assert m.bimodal_entries == 2048

    def test_bypass_parameters(self):
        m = base_config()
        assert m.bypass.buffer_words == 64      # 64 double words
        assert m.bypass.mat_entries == 4096
        assert m.bypass.macro_block_size == 1024

    def test_victim_parameters(self):
        m = base_config()
        assert m.victim.l1_entries == 64
        assert m.victim.l2_entries == 512


class TestSensitivityVariants:
    def test_all_six_rows(self):
        assert list(SENSITIVITY_CONFIGS) == [
            "Base Confg.", "Higher Mem. Lat.", "Larger L2 Size",
            "Larger L1 Size", "Higher L2 Asc.", "Higher L1 Asc.",
        ]

    def test_each_changes_one_knob(self):
        base = base_config()
        assert higher_mem_latency().mem_latency == 200
        assert larger_l2().l2.size == 1024 * KB
        assert larger_l2().l2.assoc == base.l2.assoc
        assert larger_l1().l1d.size == 64 * KB
        assert higher_l2_assoc().l2.assoc == 8
        assert higher_l2_assoc().l2.size == base.l2.size
        assert higher_l1_assoc().l1d.assoc == 8


class TestScaling:
    def test_scaled_preserves_structure(self):
        m = base_config().scaled(8)
        assert m.l1d.size == 4 * KB
        assert m.l1d.assoc == 4
        assert m.l1d.block_size == 32
        assert m.l2.size == 64 * KB
        assert m.mem_latency == 100  # latencies unchanged

    def test_scaled_identity(self):
        m = base_config()
        assert m.scaled(1) is m

    def test_scaled_floors(self):
        m = base_config().scaled(1024)
        assert m.l1d.size >= m.l1d.assoc * m.l1d.block_size
        assert m.victim.l1_entries >= 4
        assert m.bypass.buffer_words >= 16

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            base_config().scaled(0)

    def test_configs_hashable_and_frozen(self):
        m = base_config()
        hash(m)
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.issue_width = 8


class TestValidation:
    def test_cache_params_geometry(self):
        with pytest.raises(ValueError):
            CacheParams("bad", -1, 2, 32, 1)
        with pytest.raises(ValueError):
            CacheParams("bad", 1024, 2, 32, -1)

    def test_machine_params_validation(self):
        with pytest.raises(ValueError):
            MachineParams(issue_width=0)
        with pytest.raises(ValueError):
            MachineParams(mem_ports=0)

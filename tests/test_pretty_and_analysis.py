"""Tests for the IR pretty-printer and trace analysis utilities."""

import numpy as np
import pytest

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.pretty import format_program, format_reference
from repro.compiler.ir.refs import (
    IndexedRef,
    PointerChaseRef,
    RegisterRef,
    ScalarRef,
)
from repro.compiler.regions.markers import insert_markers
from repro.isa.analysis import profile_trace, reuse_distance_histogram
from repro.isa.trace import TraceBuilder
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


class TestPrettyPrinter:
    def build(self):
        b = ProgramBuilder("pp")
        a = b.array("A", (8, 8))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, 8, [loop("j", 0, 8, [
            stmt(writes=[a[i, j]], reads=[a[i, j - 1]], work=1,
                 label="stencil"),
        ])]))
        return b.build()

    def test_listing_structure(self):
        text = format_program(self.build())
        assert "// program pp" in text
        assert "double A[8][8];" in text
        assert "for (i = 0; i < 8)" in text
        assert "A[i][j] = f(A[i][j - 1]);  // stencil" in text

    def test_markers_rendered(self):
        program = get_spec("tpcd_q3").instantiate(TINY)
        insert_markers(program)
        text = format_program(program)
        assert "__ACTIVATE_HW();" in text
        assert "__DEACTIVATE_HW();" in text

    def test_reference_forms(self):
        b = ProgramBuilder("refs")
        a = b.array("A", (8,))
        idx = b.index_array("I", np.arange(8))
        heap = b.array("H", (8,), element_size=32,
                       data=np.arange(8))
        i = var("i")
        assert format_reference(ScalarRef("x")) == "x"
        assert format_reference(a[i + 1]) == "A[i + 1]"
        assert format_reference(
            IndexedRef(a, idx[i], offset=2)
        ) == "A[I[i]+2]"
        assert format_reference(
            PointerChaseRef(heap, "walk", 8)
        ) == "H->(walk+8)"
        assert format_reference(RegisterRef(a[i])) == "reg(A[i])"

    def test_layout_annotations_shown(self):
        program = self.build()
        program.arrays["A"].dim_order = (1, 0)
        program.arrays["A"].pad = 4
        text = format_program(program)
        assert "layout (1, 0)" in text
        assert "pad=4" in text


class TestTraceProfile:
    def test_streaming_profile(self):
        tb = TraceBuilder("s")
        for i in range(512):
            tb.load(i * 8)
        profile = profile_trace(tb.build())
        assert profile.memory_refs == 512
        assert profile.sequential_fraction > 0.9
        assert profile.locality_flavor == "streaming"
        assert profile.working_set_bytes == 512 * 8 // 32 * 32

    def test_hot_spot_profile(self):
        tb = TraceBuilder("h")
        for i in range(500):
            tb.load(0x1000)
        profile = profile_trace(tb.build())
        assert profile.distinct_lines == 1
        assert profile.top_line_share == 1.0
        assert profile.locality_flavor == "reuse-heavy"

    def test_scattered_profile(self):
        import random
        rng = random.Random(5)
        tb = TraceBuilder("r")
        for _ in range(400):
            tb.load(rng.randrange(0, 1 << 22) & ~7)
        profile = profile_trace(tb.build())
        assert profile.locality_flavor == "scattered"

    def test_read_fraction(self):
        tb = TraceBuilder("w")
        tb.load(0)
        tb.store(8)
        tb.store(16)
        profile = profile_trace(tb.build())
        assert profile.read_fraction == pytest.approx(1 / 3)

    def test_workload_flavors_match_design(self):
        """The models really have the access character they claim."""
        flavors = {}
        for name in ("compress", "li"):
            program = get_spec(name).instantiate(TINY)
            trace = TraceGenerator(program).generate()
            flavors[name] = profile_trace(trace).locality_flavor
        # Li is dominated by the scattered cons-cell walks.
        assert flavors["li"] in ("scattered", "reuse-heavy")


class TestReuseDistance:
    def test_cold_counts(self):
        tb = TraceBuilder("c")
        for i in range(64):
            tb.load(i * 32)
        histogram = reuse_distance_histogram(tb.build())
        assert histogram["cold"] == 64

    def test_immediate_reuse(self):
        tb = TraceBuilder("i")
        for _ in range(10):
            tb.load(0)
        histogram = reuse_distance_histogram(tb.build())
        assert histogram["<=16"] == 9
        assert histogram["cold"] == 1

    def test_long_distance_reuse(self):
        tb = TraceBuilder("l")
        for i in range(2000):
            tb.load(i * 32)
        tb.load(0)  # reuse at distance 2000
        histogram = reuse_distance_histogram(tb.build())
        assert histogram[">1024"] == 1

    def test_histogram_totals(self):
        program = get_spec("perl").instantiate(TINY)
        trace = TraceGenerator(program).generate()
        histogram = reuse_distance_histogram(trace)
        assert sum(histogram.values()) == trace.memory_reference_count

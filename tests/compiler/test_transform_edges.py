"""Edge cases for the transformations: tiled bounds, markers, depth."""


from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.stmts import MarkerStmt
from repro.compiler.optimizer import LocalityOptimizer
from repro.compiler.regions.markers import insert_markers
from repro.compiler.transforms.interchange import apply_interchange
from repro.compiler.transforms.tiling import apply_tiling
from repro.compiler.transforms.unroll import apply_unroll_and_jam
from repro.params import base_config
from repro.tracegen.interpreter import TraceGenerator


def matmul(n=24):
    b = ProgramBuilder("mm")
    c = b.array("C", (n, n))
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    i, j, k = var("i"), var("j"), var("k")
    b.append(loop("i", 0, n, [loop("j", 0, n, [loop("k", 0, n, [
        stmt(writes=[c[i, j]], reads=[c[i, j], a[i, k], bb[k, j]], work=2),
    ])])]))
    return b.build()


class TestTiledBoundsDownstream:
    def test_interchange_skips_tiled_nest(self):
        program = matmul()
        head = program.top_level_loops()[0]
        assert apply_tiling(head, l1_bytes=1024).applied
        result = apply_interchange(head, line_size=32)
        assert not result.applied
        assert result.reason in ("non-constant bounds", "nest depth < 2",
                                 "already optimal", "no legal permutation")

    def test_unroll_skips_min_bounds(self):
        program = matmul()
        head = program.top_level_loops()[0]
        apply_tiling(head, l1_bytes=1024)
        result = apply_unroll_and_jam(head)
        assert not result.applied

    def test_tiling_twice_is_rejected(self):
        program = matmul()
        head = program.top_level_loops()[0]
        assert apply_tiling(head, l1_bytes=1024).applied
        second = apply_tiling(head, l1_bytes=1024)
        assert not second.applied

    def test_tiled_program_still_traces(self):
        program = matmul(16)
        reference = {
            inst.arg
            for inst in TraceGenerator(program.clone()).generate()
            if inst.is_memory
        }
        apply_tiling(program.top_level_loops()[0], l1_bytes=512)
        tiled = {
            inst.arg
            for inst in TraceGenerator(program).generate()
            if inst.is_memory
        }
        assert tiled == reference


class TestMarkersSurviveOptimization:
    def test_optimizer_preserves_markers(self):
        import numpy as np
        from repro.compiler.ir.refs import IndexedRef

        b = ProgramBuilder("marked")
        a = b.array("A", (32, 32))
        idx = b.index_array("IDX", np.arange(16))
        tbl = b.array("TBL", (64,))
        i, j, k = var("i"), var("j"), var("k")
        sw_nest = loop("i", 0, 32, [loop("j", 0, 32, [
            stmt(writes=[a[i, j]], reads=[a[i, j]], work=1),
        ])])
        hw_loop = loop("k", 0, 16, [
            stmt(reads=[IndexedRef(tbl, idx[k]),
                        IndexedRef(tbl, idx[k], 1)], work=1),
        ])
        b.append(loop("t", 0, 2, [sw_nest, hw_loop]))
        program = b.build()

        insert_markers(program)
        markers_before = len(program.markers())
        assert markers_before > 0
        LocalityOptimizer(base_config().scaled(8)).optimize(program)
        assert len(program.markers()) == markers_before
        # And the trace still toggles coherently.
        trace = TraceGenerator(program).generate()
        assert trace.marker_balance() in (0, 1)

    def test_marker_only_program(self):
        program = ProgramBuilder("empty").build()
        program.body.append(MarkerStmt("on"))
        trace = TraceGenerator(program).generate()
        assert len(trace) == 1


class TestMatmulEndToEnd:
    def test_tiling_speeds_up_matmul(self):
        """The canonical tiling result: on a cache-exceeding matmul,
        the tiled version takes fewer cycles."""
        from repro.core.experiment import simulate_trace

        machine = base_config().scaled(8)
        plain = matmul(40)
        plain_trace = TraceGenerator(plain).generate()
        plain_cycles = simulate_trace(plain_trace, machine).cycles

        tiled = matmul(40)
        result = apply_tiling(
            tiled.top_level_loops()[0], l1_bytes=machine.l1d.size
        )
        assert result.applied
        tiled_trace = TraceGenerator(tiled).generate()
        tiled_cycles = simulate_trace(tiled_trace, machine).cycles
        assert tiled_cycles < plain_cycles

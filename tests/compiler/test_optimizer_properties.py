"""Cross-cutting optimizer properties on the real workloads."""

import pytest

from repro.compiler.optimizer import LocalityOptimizer
from repro.isa import Opcode
from repro.params import base_config
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import all_specs, get_spec


@pytest.fixture(scope="module")
def machine():
    return base_config().scaled(TINY.machine_divisor)


@pytest.mark.parametrize(
    "name", [spec.name for spec in all_specs()]
)
class TestOptimizerSafety:
    def test_optimization_preserves_dynamic_semantics(self, name, machine):
        """The optimized program performs the same number of loop-body
        statement executions (ALU work is invariant under all our
        transformations except unroll's branch reduction)."""
        base_program = get_spec(name).instantiate(TINY)
        base_trace = TraceGenerator(base_program).generate()
        base_hist = base_trace.opcode_histogram()

        opt_program = get_spec(name).instantiate(TINY)
        LocalityOptimizer(machine).optimize(opt_program)
        opt_trace = TraceGenerator(opt_program).generate()
        opt_hist = opt_trace.opcode_histogram()

        # Statement work (ALU) is never dropped by the transformations
        # (loop-overhead ALU varies with unrolling, so compare within
        # a tolerance proportional to branch reduction).
        branch_delta = base_hist[Opcode.BRANCH] - opt_hist[Opcode.BRANCH]
        alu_delta = base_hist[Opcode.ALU] - opt_hist[Opcode.ALU]
        assert abs(alu_delta) <= abs(branch_delta) + 1

        # Stores are preserved or reduced only by scalar replacement
        # (which still stores each promoted ref once per inner loop).
        assert opt_hist[Opcode.STORE] <= base_hist[Opcode.STORE]
        assert opt_hist[Opcode.STORE] > 0 or base_hist[Opcode.STORE] == 0

    def test_optimizer_is_deterministic(self, name, machine):
        def optimize_once():
            program = get_spec(name).instantiate(TINY)
            LocalityOptimizer(machine).optimize(program)
            return TraceGenerator(program).generate().instructions

        assert optimize_once() == optimize_once()

    def test_double_optimization_is_stable(self, name, machine):
        """Optimizing an already-optimized program must not blow up
        (idempotence up to re-padding, which is guarded)."""
        program = get_spec(name).instantiate(TINY)
        optimizer = LocalityOptimizer(machine)
        optimizer.optimize(program)
        first = TraceGenerator(program.clone()).generate()
        optimizer.optimize(program)
        second = TraceGenerator(program.clone()).generate()
        assert abs(len(second) - len(first)) <= len(first) // 4

"""Property-based tests for region detection + marker placement.

Generates random region structures (nested loops whose leaves are
either analyzable or irregular), inserts markers, then *executes* the
marker stream to verify the central correctness property: at every
point of execution, the hardware state equals the preference of the
region being executed — on every iteration of every loop, not just the
first.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.analysis.classify import HARDWARE, SOFTWARE
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import IndexedRef
from repro.compiler.ir.stmts import MarkerStmt, Statement
from repro.compiler.regions.detect import detect_regions
from repro.compiler.regions.markers import insert_markers

# A region tree: "sw" | "hw" | tuple of children.
region_tree = st.recursive(
    st.sampled_from(["sw", "hw"]),
    lambda children: st.tuples(children, children)
    | st.tuples(children, children, children),
    max_leaves=6,
)


def build_program(tree):
    """Materialize a region tree as a program with one loop per node."""
    builder = ProgramBuilder("prop")
    array = builder.array("A", (64,))
    idx = builder.index_array("IDX", np.arange(8, dtype=np.int64))
    counter = [0]

    def make(node):
        counter[0] += 1
        name = f"v{counter[0]}"
        v = var(name)
        if node == "sw":
            return loop(name, 0, 2, [
                stmt(writes=[array[v]], reads=[array[v]], work=1),
            ])
        if node == "hw":
            return loop(name, 0, 2, [
                stmt(
                    reads=[IndexedRef(array, idx[v]),
                           IndexedRef(array, idx[v], offset=1)],
                    writes=[IndexedRef(array, idx[v])],
                    work=1,
                ),
            ])
        return loop(name, 0, 2, [make(child) for child in node])

    builder.append(make(tree))
    return builder.build()


def simulate_states(nodes, state, observations):
    """Walk the program as the interpreter would, twice per loop, and
    record (observed_state, required_state) at every leaf region."""
    for node in nodes:
        if isinstance(node, MarkerStmt):
            state = HARDWARE if node.activates else SOFTWARE
        elif isinstance(node, Loop):
            if node.preference in (SOFTWARE, HARDWARE) and not any(
                isinstance(child, MarkerStmt) for child in node.walk()
            ):
                observations.append((state, node.preference))
                continue
            for _iteration in range(2):  # loops run at least twice
                state = simulate_states(node.body, state, observations)
        elif isinstance(node, Statement) and node.preference:
            observations.append((state, node.preference))
    return state


@given(region_tree)
@settings(max_examples=120, deadline=None)
def test_marker_state_always_matches_region(tree):
    program = build_program(tree)
    insert_markers(program)
    observations = []
    simulate_states(program.body, SOFTWARE, observations)
    assert observations, "tree produced no regions"
    for observed, required in observations:
        assert observed == required


@given(region_tree)
@settings(max_examples=60, deadline=None)
def test_markers_never_exceed_naive_count(tree):
    program = build_program(tree)
    report = insert_markers(program)
    assert report.inserted <= report.naive_markers
    assert report.eliminated >= 0


@given(region_tree)
@settings(max_examples=60, deadline=None)
def test_detection_partitions_program(tree):
    """Maximal regions are disjoint and cover every leaf loop."""
    program = build_program(tree)
    report = detect_regions(program)
    region_nodes = [node for _pref, node in report.regions]
    # Disjoint: no region node is contained in another region node.
    for a in region_nodes:
        if not isinstance(a, Loop):
            continue
        for b in region_nodes:
            if a is not b and isinstance(b, Loop):
                assert a not in list(b.walk())[1:]
    # Cover: every innermost loop lies inside exactly one region.
    innermost = [
        node for node in program.walk()
        if isinstance(node, Loop) and node.is_innermost
    ]
    for leaf in innermost:
        containing = [
            r for r in region_nodes
            if isinstance(r, Loop) and leaf in r.walk()
        ]
        assert len(containing) == 1

"""Loop skewing and fusion/fission: mechanics, gates, audit, and the
demo workloads that exercise them end to end."""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.optimizer import LocalityOptimizer, OptimizationReport
from repro.compiler.regions.markers import insert_markers
from repro.compiler.transforms.fusion import (
    FusionResult,
    apply_fission,
    fuse_pair,
    fuse_region,
    fusion_compatible,
)
from repro.compiler.transforms.skew import (
    MAX_SKEW_FACTOR,
    SkewResult,
    apply_skew,
    skew_chain,
)
from repro.compiler.verify import verify_legality, verify_program
from repro.params import base_config
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


def addresses_touched(program):
    trace = TraceGenerator(program.clone()).generate()
    return sorted(
        (inst.op, inst.arg) for inst in trace if inst.is_memory
    )


def wavefront(name="wave", n=256, steps=32, shift=1):
    """Seidel-like time/space sweep: this step reads ``a[i+shift]``
    from the previous step, so tiling needs a skew of ``shift``."""
    b = ProgramBuilder(name)
    A = b.array("A", (n + 8,))
    t, i = var("t"), var("i")
    b.append(loop("t", 0, steps, [loop("i", 1, n, [
        stmt(writes=[A[i]], reads=[A[i - 1], A[i + shift]]),
    ])]))
    return b.build()


def uniform(name="uni", n=256, steps=32):
    """Pointwise update: every direction non-negative, no skew needed."""
    b = ProgramBuilder(name)
    A = b.array("A", (n + 8,))
    t, i = var("t"), var("i")
    b.append(loop("t", 0, steps, [loop("i", 1, n, [
        stmt(writes=[A[i]], reads=[A[i]]),
    ])]))
    return b.build()


def pipeline(name="pipe", n=24, ahead=False):
    """Two adjacent sibling sweeps inside a shared outer loop; with
    ``ahead`` the second reads *ahead* of the first's writes."""
    b = ProgramBuilder(name)
    A = b.array("A", (n + 1,))
    B = b.array("B", (n + 1,))
    i, j = var("i"), var("j")
    offset = 1 if ahead else -1
    first = loop("i", 1, n, [
        stmt(writes=[A[i]], reads=[B[i]]),
    ])
    second = loop("j", 1, n, [
        stmt(writes=[B[j]], reads=[A[j + offset]]),
    ])
    b.append(loop("t", 0, 3, [first, second]))
    return b.build()


class TestSkewMechanics:
    def test_skew_chain_preserves_address_multiset(self):
        program = wavefront()
        skewed = program.clone()
        head = skewed.body[0]
        skew_chain(head.perfect_nest_loops(), 1)
        assert addresses_touched(program) == addresses_touched(skewed)

    def test_skew_chain_shifts_bounds_and_subscripts(self):
        program = wavefront()
        head = program.body[0]
        chain = head.perfect_nest_loops()
        skew_chain(chain, 2)
        inner = chain[1]
        assert inner.lower.terms == {"t": 2}
        assert inner.upper.terms == {"t": 2}
        statement = next(iter(inner.statements()))
        write = statement.writes[0]
        assert write.subscripts[0].terms == {"i": 1, "t": -2}

    def test_apply_skew_fixes_wavefront(self):
        program = wavefront()
        result = apply_skew(program.body[0], l1_bytes=1024)
        assert result.applied
        assert result.factor == 1
        assert result.skewed_var == "i"
        assert result.wrt_var == "t"

    def test_apply_skew_skips_permutable_nest(self):
        program = uniform()
        result = apply_skew(program.body[0], l1_bytes=1024)
        assert not result.applied
        assert "already fully permutable" in result.reason

    def test_apply_skew_skips_shallow_nest(self):
        b = ProgramBuilder("one")
        A = b.array("A", (64,))
        i = var("i")
        b.append(loop("i", 1, 64, [stmt(writes=[A[i]], reads=[A[i - 1]])]))
        result = apply_skew(b.build().body[0], l1_bytes=1024)
        assert not result.applied
        assert "depth-2" in result.reason

    def test_apply_skew_rejects_oversized_factor(self):
        program = wavefront(shift=MAX_SKEW_FACTOR + 1)
        result = apply_skew(program.body[0], l1_bytes=1024)
        assert not result.applied
        assert "too large" in result.reason


class TestFusionMechanics:
    def test_legal_fusion_merges_statements(self):
        program = pipeline()
        outer = program.body[0]
        first, second = outer.body
        assert fuse_pair(first, second) is None
        del outer.body[1]
        assert len(first.body) == 2
        # The second statement's subscripts were renamed onto i.
        renamed = first.body[1]
        assert all(
            "j" not in ref.subscripts[0].terms
            for ref in renamed.reads + renamed.writes
        )

    def test_fusion_preserves_address_multiset(self):
        program = pipeline()
        fused = program.clone()
        outer = fused.body[0]
        assert fuse_pair(outer.body[0], outer.body[1]) is None
        del outer.body[1]
        assert addresses_touched(program) == addresses_touched(fused)

    def test_backward_dependence_prevents_fusion(self):
        program = pipeline(ahead=True)
        outer = program.body[0]
        reason = fuse_pair(outer.body[0], outer.body[1])
        assert reason is not None
        assert "fusion-preventing" in reason
        # Refused merges must leave both nests untouched.
        assert len(outer.body) == 2
        assert len(outer.body[0].body) == 1

    def test_profit_gate_requires_shared_arrays(self):
        b = ProgramBuilder("disjoint")
        A = b.array("A", (16,))
        B = b.array("B", (16,))
        i, j = var("i"), var("j")
        first = loop("i", 1, 16, [stmt(writes=[A[i]], reads=[A[i - 1]])])
        second = loop("j", 1, 16, [stmt(writes=[B[j]], reads=[B[j - 1]])])
        b.append(loop("t", 0, 2, [first, second]))
        program = b.build()
        outer = program.body[0]
        reason = fuse_pair(outer.body[0], outer.body[1])
        assert reason == "no shared arrays (fusion not profitable)"
        # The audit path ignores profitability: legality only.
        assert fuse_pair(
            outer.body[0], outer.body[1], require_profit=False
        ) is None

    def test_structural_mismatch_reported(self):
        b = ProgramBuilder("shapes")
        A = b.array("A", (16, 16))
        i, j, k = var("i"), var("j"), var("k")
        deep = loop("i", 0, 16, [loop("j", 0, 16, [
            stmt(writes=[A[i, j]], reads=[]),
        ])])
        shallow = loop("k", 0, 16, [stmt(writes=[A[k, 0]], reads=[])])
        assert fusion_compatible(deep, shallow) == "mismatched nest depth"
        short = loop("k", 0, 8, [stmt(writes=[A[k, 0]], reads=[])])
        assert fusion_compatible(shallow, short) == "mismatched bounds"

    def test_fuse_region_walks_and_merges(self):
        program = pipeline()
        results = fuse_region(program.body[0], 0)
        assert [r.applied for r in results] == [True]
        assert results[0].at == (0,)
        assert results[0].fused_vars == ("i",)

    def test_fission_splits_and_preserves_addresses(self):
        b = ProgramBuilder("split")
        A = b.array("A", (16,))
        B = b.array("B", (16,))
        i = var("i")
        s1 = stmt(writes=[A[i]], reads=[A[i - 1]])
        s2 = stmt(writes=[B[i]], reads=[B[i - 1]])
        b.append(loop("i", 1, 16, [s1, s2]))
        program = b.build()
        split = program.clone()
        result = apply_fission(split.body, 0, 1)
        assert result.applied
        assert len(split.body) == 2
        assert addresses_touched(program) == addresses_touched(split)

    def test_fission_refused_on_backward_use(self):
        b = ProgramBuilder("nosplit")
        A = b.array("A", (16,))
        B = b.array("B", (16,))
        i = var("i")
        s1 = stmt(writes=[A[i]], reads=[B[i - 1]])
        s2 = stmt(writes=[B[i]], reads=[A[i]])
        b.append(loop("i", 1, 16, [s1, s2]))
        program = b.build()
        result = apply_fission(program.body, 0, 1)
        assert not result.applied
        assert "fission-preventing" in result.reason


def report_with(name, **fields):
    report = OptimizationReport(name)
    for key, value in fields.items():
        setattr(report, key, value)
    return report


def errors(diags):
    return [d for d in diags if d.severity == "error"]


class TestReplayAudit:
    def test_bogus_skew_factor_detected(self):
        # The nest needs factor 3; a buggy optimizer claiming factor 1
        # would have tiled an unskewed wavefront.
        baseline = wavefront(shift=3)
        program = baseline.clone()
        report = report_with(
            "wave",
            skews=[SkewResult(True, factor=1, skewed_var="i", wrt_var="t")],
        )
        diags = errors(verify_legality(program, report, baseline))
        assert diags
        assert "does not make the nest fully permutable" in diags[0].message

    def test_correct_skew_factor_passes(self):
        baseline = wavefront(shift=3)
        program = baseline.clone()
        report = report_with(
            "wave",
            skews=[SkewResult(True, factor=3, skewed_var="i", wrt_var="t")],
        )
        assert not errors(verify_legality(program, report, baseline))

    def test_illegal_fusion_claim_detected(self):
        baseline = pipeline(ahead=True)
        program = baseline.clone()
        report = report_with(
            "pipe",
            fusions=[FusionResult(True, 0, (0,), ("i",), 1)],
        )
        diags = errors(verify_legality(program, report, baseline))
        assert diags
        assert "illegal fusion" in diags[0].message
        assert "fusion-preventing" in diags[0].message

    def test_legal_fusion_claim_replays_clean(self):
        baseline = pipeline()
        program = baseline.clone()
        outer = program.body[0]
        assert fuse_pair(outer.body[0], outer.body[1]) is None
        del outer.body[1]
        report = report_with(
            "pipe",
            fusions=[FusionResult(True, 0, (0,), ("i",), 1)],
        )
        assert not verify_legality(program, report, baseline)

    def test_misplaced_fusion_claim_warned(self):
        baseline = pipeline()
        program = baseline.clone()
        report = report_with(
            "pipe",
            fusions=[FusionResult(True, 0, (5,), ("i",), 1)],
        )
        diags = verify_legality(program, report, baseline)
        assert any(
            "no adjacent sibling nests" in d.message
            and d.severity == "warning"
            for d in diags
        )


class TestDemoWorkloads:
    def _optimize(self, name, **flags):
        program = get_spec(name).instantiate(TINY)
        insert_markers(program)
        baseline = program.clone()
        machine = base_config().scaled(TINY.machine_divisor)
        report = LocalityOptimizer(machine, **flags).optimize(program)
        return program, baseline, report

    def test_seidel_is_skewed_then_tiled(self):
        program, baseline, report = self._optimize("seidel")
        assert [s.applied for s in report.skews] == [True]
        assert report.skews[0].factor == 1
        assert [t.applied for t in report.tilings] == [True]
        result = verify_program(program, report=report, baseline=baseline)
        assert result.ok(strict=True), [str(d) for d in result.diagnostics]

    def test_seidel_skew_preserves_addresses(self):
        program, _, _ = self._optimize(
            "seidel",
            enable_layout=False,
            enable_padding=False,
            enable_scalar_replacement=False,
        )
        baseline = get_spec("seidel").instantiate(TINY)
        assert addresses_touched(baseline) == addresses_touched(program)

    def test_pipefuse_fuses_forward_refuses_backward(self):
        program, baseline, report = self._optimize("pipefuse")
        applied = [f for f in report.fusions if f.applied]
        refused = [f for f in report.fusions if not f.applied]
        assert len(applied) == 1
        assert refused and "fusion-preventing" in refused[0].reason
        result = verify_program(program, report=report, baseline=baseline)
        assert result.ok(strict=True), [str(d) for d in result.diagnostics]

    def test_pipefuse_fusion_preserves_addresses(self):
        program, _, _ = self._optimize(
            "pipefuse",
            enable_layout=False,
            enable_padding=False,
            enable_scalar_replacement=False,
        )
        baseline = get_spec("pipefuse").instantiate(TINY)
        assert addresses_touched(baseline) == addresses_touched(program)

"""The lint driver, the CLI wiring, the optimizer hook, and the
Hypothesis differential property: whatever the real pipeline emits,
the independent verifier accepts — and seeded corruption, it rejects.
"""

from hypothesis import given, settings

from repro.cli import main
from repro.compiler.ir.stmts import MarkerStmt
from repro.compiler.optimizer import LocalityOptimizer
from repro.compiler.regions.markers import insert_markers
from repro.compiler.verify import VerificationError, verify_program
from repro.compiler.verify.lint import (
    LintResult,
    lint_benchmark,
    lint_registry,
    render_lint,
)
from repro.compiler.verify.markers import _marker_sites
from repro.params import base_config
from repro.workloads.base import TINY

from tests.compiler.test_marker_properties import build_program, region_tree


def test_lint_benchmark_produces_clean_rows():
    rows = lint_benchmark("vpenta", TINY)
    assert [row.variant for row in rows] == ["base", "selective"]
    assert all(row.status() == "ok" for row in rows)
    assert rows[1].report.nests_audited > 0
    assert rows[1].report.refs_checked > 0


def test_lint_registry_subset_and_render():
    result = lint_registry(TINY, ["tpcd_q6", "chaos"])
    assert len(result.rows) == 4
    assert result.ok(strict=True)
    rendered = render_lint(result, strict=True)
    assert "clean" in rendered
    assert "tpcd_q6" in rendered and "chaos" in rendered


def test_render_lint_failure_verdict():
    rows = lint_benchmark("perl", TINY)
    from repro.compiler.verify.diagnostics import Diagnostic

    rows[0].report.diagnostics.append(
        Diagnostic("perl", "structure", "loop x", "seeded failure")
    )
    result = LintResult(rows=rows)
    assert not result.ok()
    rendered = render_lint(result)
    assert "FAILED" in rendered
    assert "seeded failure" in rendered
    assert "FAIL" in rendered.splitlines()[1]


def test_cli_lint_exits_zero(capsys):
    assert main(["--scale", "tiny", "lint", "tpcd_q6"]) == 0
    out = capsys.readouterr().out
    assert "tpcd_q6" in out
    assert "clean" in out


def test_cli_lint_strict_exits_zero(capsys):
    assert main(["--scale", "tiny", "lint", "--strict", "li"]) == 0
    assert "(strict)" in capsys.readouterr().out


def test_optimizer_verify_flag_fills_report():
    program = build_program(("sw", "hw"))
    insert_markers(program)
    report = LocalityOptimizer(base_config()).optimize(program, verify=True)
    assert report.verification is not None
    assert report.verification.ok(strict=True)


def test_optimizer_verify_flag_raises_on_corruption():
    program = build_program(("sw", "hw"))
    insert_markers(program)
    container, index, marker, _ancestors = _marker_sites(program)[0]
    container[index] = MarkerStmt("off" if marker.activates else "on")
    try:
        LocalityOptimizer(base_config()).optimize(program, verify=True)
    except VerificationError as caught:
        assert caught.report.errors
        assert "markers" in str(caught)
    else:
        raise AssertionError("corrupted program verified clean")


@given(region_tree)
@settings(max_examples=40, deadline=None)
def test_differential_pipeline_always_verifies(tree):
    """insert_markers + full optimization never produces a program the
    independent verifier rejects — for any region structure."""
    program = build_program(tree)
    insert_markers(program)
    baseline = program.clone()
    report = LocalityOptimizer(base_config()).optimize(program)
    result = verify_program(program, report=report, baseline=baseline)
    assert not result.errors, [str(d) for d in result.errors]
    # The emitter's elimination is exactly minimal, so the minimality
    # probe must stay silent too.
    assert not result.warnings, [str(d) for d in result.warnings]


@given(region_tree)
@settings(max_examples=25, deadline=None)
def test_differential_every_marker_is_load_bearing(tree):
    """Deleting any single emitted marker must break verification —
    the dual of the minimality warning staying silent above."""
    program = build_program(tree)
    insert_markers(program)
    from repro.compiler.verify import verify_markers

    for container, index, marker, _ancestors in _marker_sites(program):
        del container[index]
        try:
            diags = verify_markers(program, check_minimality=False)
            assert any(d.severity == "error" for d in diags)
        finally:
            container.insert(index, marker)

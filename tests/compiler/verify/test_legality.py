"""Unit tests for the post-transform legality audit."""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import RegisterRef
from repro.compiler.optimizer import OptimizationReport
from repro.compiler.transforms.interchange import InterchangeResult
from repro.compiler.transforms.tiling import TilingResult
from repro.compiler.transforms.unroll import UnrollResult
from repro.compiler.verify import verify_legality


def skewed_nest(name, order=("i", "j")):
    """A nest whose only dependence has distance (1, -1) in (i, j)
    order — legal as written, illegal to interchange."""
    b = ProgramBuilder(name)
    A = b.array("A", (16, 16))
    i, j = var("i"), var("j")
    body = [stmt(writes=[A[i, j]], reads=[A[i - 1, j + 1]])]
    inner_var = order[1]
    outer_var = order[0]
    b.append(
        loop(outer_var, 1, 15, [loop(inner_var, 1, 15, body)])
    )
    return b.build()


def uniform_nest(name, order=("i", "j")):
    """Distance (1, 1): every permutation is legal."""
    b = ProgramBuilder(name)
    A = b.array("A", (16, 16))
    i, j = var("i"), var("j")
    body = [stmt(writes=[A[i, j]], reads=[A[i - 1, j - 1]])]
    b.append(loop(order[0], 1, 16, [loop(order[1], 1, 16, body)]))
    return b.build()


def report_with(name, **fields):
    report = OptimizationReport(name)
    for key, value in fields.items():
        setattr(report, key, value)
    return report


def errors(diags):
    return [d for d in diags if d.severity == "error"]


def test_illegal_interchange_claim_detected():
    baseline = skewed_nest("skew")
    transformed = skewed_nest("skew", order=("j", "i"))
    report = report_with(
        "skew",
        interchanges=[
            InterchangeResult(True, ("i", "j"), ("j", "i"))
        ],
    )
    diags = verify_legality(transformed, report=report, baseline=baseline)
    flagged = errors(diags)
    assert flagged
    assert "illegal interchange" in flagged[0].message
    assert "lexicographically negative" in flagged[0].message
    assert flagged[0].node == "nest i > j"


def test_legal_interchange_claim_accepted():
    baseline = uniform_nest("uni")
    transformed = uniform_nest("uni", order=("j", "i"))
    report = report_with(
        "uni",
        interchanges=[
            InterchangeResult(True, ("i", "j"), ("j", "i"))
        ],
    )
    assert verify_legality(
        transformed, report=report, baseline=baseline
    ) == []


def test_interchange_claim_missing_from_program_warns():
    baseline = uniform_nest("gone")
    transformed = uniform_nest("gone")  # never actually permuted
    report = report_with(
        "gone",
        interchanges=[
            InterchangeResult(True, ("i", "j"), ("j", "i"))
        ],
    )
    diags = verify_legality(transformed, report=report, baseline=baseline)
    assert any(
        d.severity == "warning" and "no nest path" in d.message
        for d in diags
    )


def test_tiling_of_non_permutable_nest_detected():
    baseline = skewed_nest("tileskew")
    transformed = skewed_nest("tileskew")
    report = report_with(
        "tileskew",
        tilings=[TilingResult(True, tile_size=4, tiled_vars=("i", "j"))],
    )
    diags = verify_legality(transformed, report=report, baseline=baseline)
    assert any("not fully permutable" in d.message for d in errors(diags))


def test_unroll_with_carried_dependence_detected():
    # (1, -1): the jammed copies would interleave across the inner
    # loop and run the sink before its source.
    b = ProgramBuilder("carry")
    A = b.array("A", (16, 16))
    i, j = var("i"), var("j")
    b.append(loop("i", 1, 15, [loop("j", 1, 15, [
        stmt(writes=[A[i, j]], reads=[A[i - 1, j + 1]])
    ])]))
    program = b.build()
    report = report_with(
        "carry", unrolls=[UnrollResult(True, variable="i", factor=2)]
    )
    diags = verify_legality(
        program, report=report, baseline=program.clone()
    )
    assert any(
        "carries a dependence on the unrolled" in d.message
        for d in errors(diags)
    )


def test_unroll_remainder_detected():
    b = ProgramBuilder("rem")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(writes=[A[i]])]))
    program = b.build()
    report = report_with(
        "rem", unrolls=[UnrollResult(True, variable="i", factor=3)]
    )
    diags = verify_legality(
        program, report=report, baseline=program.clone()
    )
    assert any(
        "does not divide the trip count" in d.message
        for d in errors(diags)
    )


def test_variant_promotion_detected():
    b = ProgramBuilder("promote")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(reads=[RegisterRef(A[i])])]))
    diags = verify_legality(b.build())
    assert any(
        "varies with the innermost loop variable 'i'" in d.message
        for d in errors(diags)
    )


def test_promotion_without_prologue_load_detected():
    b = ProgramBuilder("noload")
    A = b.array("A", (8,))
    j = var("j")
    inner = loop("i", 0, 8, [stmt(reads=[RegisterRef(A[j])])])
    b.append(loop("j", 0, 8, [inner]))
    diags = verify_legality(b.build())
    assert any(
        "never loaded before the loop" in d.message for d in errors(diags)
    )


def test_well_formed_promotion_accepted():
    b = ProgramBuilder("goodload")
    A = b.array("A", (8,))
    j = var("j")
    prologue = stmt(reads=[A[j]])
    inner = loop("i", 0, 8, [stmt(reads=[RegisterRef(A[j])])])
    epilogue = stmt(writes=[A[j]])
    body = [prologue, inner, epilogue]
    b.append(loop("j", 0, 8, body))
    assert verify_legality(b.build()) == []

"""Mutation tests on real benchmarks: seed one bug, demand one report.

Each test breaks one layer the way a buggy transform or emitter would
— an illegal interchange, a dropped or flipped marker, a widened tile
— and asserts the verifier reports it with a diagnostic naming the
program, the analysis, and the offending node.
"""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.refs import AffineRef
from repro.compiler.optimizer import LocalityOptimizer, software_nest_heads
from repro.compiler.regions.detect import detect_regions
from repro.compiler.regions.markers import insert_markers
from repro.compiler.transforms.tiling import apply_tiling
from repro.compiler.verify import (
    verify_bounds,
    verify_legality,
    verify_markers,
    verify_program,
)
from repro.compiler.verify.markers import _marker_sites
from repro.params import base_config
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


def optimized_pair(name):
    """(program, baseline, report) after the real pipeline."""
    program = get_spec(name).instantiate(TINY)
    insert_markers(program)
    baseline = program.clone()
    machine = base_config().scaled(TINY.machine_divisor)
    report = LocalityOptimizer(machine).optimize(program)
    return program, baseline, report


def test_real_suite_variant_is_clean_before_mutation():
    program, baseline, report = optimized_pair("adi")
    result = verify_program(program, report=report, baseline=baseline)
    assert result.ok(strict=True), [str(d) for d in result.diagnostics]


def test_illegal_interchange_on_adi_detected():
    # adi's second software nest is interchanged (i, j) -> (j, i),
    # legal for its (0, 1) dependence.  Seed the bug the optimizer
    # could have: pretend the original nest also carried a (1, -1)
    # dependence, which the interchange would have had to refuse.
    program, baseline, report = optimized_pair("adi")
    interchanged = [r for r in report.interchanges if r.applied]
    assert interchanged, "adi no longer interchanges; pick another seed"

    detect_regions(baseline)
    for index, head in enumerate(software_nest_heads(baseline)):
        if not report.interchanges[index].applied:
            continue
        inner = head.perfect_nest_loops()[-1]
        statement = next(iter(inner.statements()))
        write = next(
            ref for ref in statement.writes
            if isinstance(ref, AffineRef) and ref.array.rank >= 2
        )
        skewed = AffineRef(
            write.array,
            (write.subscripts[0] - 1, write.subscripts[1] + 1),
        )
        statement.reads.append(skewed)
        break

    diags = verify_legality(program, report=report, baseline=baseline)
    flagged = [d for d in diags if d.severity == "error"]
    assert flagged
    assert flagged[0].program == "adi"
    assert flagged[0].analysis == "legality"
    assert "illegal interchange" in flagged[0].message
    assert "nest i > j" == flagged[0].node


def test_dropped_marker_on_tpcd_q3_detected():
    program = get_spec("tpcd_q3").instantiate(TINY)
    insert_markers(program)
    sites = _marker_sites(program)
    assert sites, "tpcd_q3 no longer carries markers; pick another seed"
    container, index, _marker, _ancestors = sites[0]
    del container[index]
    diags = verify_markers(program)
    flagged = [d for d in diags if d.severity == "error"]
    assert flagged
    assert flagged[0].program == "tpcd_q3"
    assert flagged[0].analysis == "markers"
    assert "region entered with hardware state" in flagged[0].message
    assert flagged[0].node != "<program body>"  # names the region's path


def test_flipped_marker_on_chaos_detected():
    from repro.compiler.ir.stmts import MarkerStmt

    program = get_spec("chaos").instantiate(TINY)
    insert_markers(program)
    sites = _marker_sites(program)
    assert sites, "chaos no longer carries markers; pick another seed"
    container, index, marker, _ancestors = sites[0]
    container[index] = MarkerStmt("off" if marker.activates else "on")
    diags = verify_markers(program)
    flagged = [d for d in diags if d.severity == "error"]
    assert flagged
    assert flagged[0].program == "chaos"
    assert flagged[0].analysis == "markers"


def tiled_matmul():
    """A nest the tiler actually transforms (forced with a small L1)."""
    b = ProgramBuilder("mm")
    n = 32
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    C = b.array("C", (n, n))
    i, j, k = var("i"), var("j"), var("k")
    b.append(loop("i", 0, n, [loop("j", 0, n, [loop("k", 0, n, [
        stmt(writes=[C[i, j]], reads=[C[i, j], A[i, k], B[k, j]]),
    ])])]))
    program = b.build()
    result = apply_tiling(program.body[0], l1_bytes=2048)
    assert result.applied, result.reason
    return program


def test_tiled_nest_is_clean_before_mutation():
    assert verify_bounds(tiled_matmul()) == []


def test_widened_tile_out_of_bounds_detected():
    program = tiled_matmul()
    point_loops = [
        node for node in program.walk()
        if isinstance(node, Loop) and isinstance(node.upper, MinExpr)
    ]
    assert point_loops, "tiling produced no min-bounded point loop"
    victim = point_loops[0]
    victim.upper = MinExpr(*(op + 1 for op in victim.upper.operands))
    diags = verify_bounds(program)
    flagged = [d for d in diags if d.severity == "error"]
    assert flagged
    assert flagged[0].program == "mm"
    assert flagged[0].analysis == "bounds"
    assert "extent is 32" in flagged[0].message
    assert "ref " in flagged[0].node

"""Unit tests for the marker abstract interpretation.

The emitter-independent checker must accept the emitter's output,
reject any single dropped or flipped marker, flag redundant extras,
and get loop re-entry right (the fixed point), including loops that
may run zero times.
"""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.stmts import MarkerStmt
from repro.compiler.regions.markers import insert_markers
from repro.compiler.verify import verify_markers
from repro.compiler.verify.markers import _marker_sites

from tests.compiler.test_marker_properties import build_program


def test_emitter_output_verifies_clean():
    program = build_program(("sw", "hw", "sw"))
    insert_markers(program)
    assert verify_markers(program) == []


def test_dropped_marker_is_an_error():
    program = build_program(("sw", "hw", "sw"))
    insert_markers(program)
    sites = _marker_sites(program)
    assert sites
    container, index, _marker, _ancestors = sites[0]
    del container[index]
    diags = verify_markers(program)
    errors = [d for d in diags if d.severity == "error"]
    assert errors
    assert all(d.analysis == "markers" for d in errors)
    assert any("requires" in d.message for d in errors)


def test_flipped_marker_is_an_error():
    program = build_program(("sw", "hw"))
    insert_markers(program)
    sites = _marker_sites(program)
    container, index, marker, _ancestors = sites[0]
    container[index] = MarkerStmt("off" if marker.activates else "on")
    diags = verify_markers(program)
    assert any(d.severity == "error" for d in diags)


def test_redundant_marker_warns_minimality():
    program = build_program(("sw", "hw"))
    insert_markers(program)
    # An OFF marker at program start restates the initial state: the
    # property still holds everywhere, so minimality must flag it.
    program.body.insert(0, MarkerStmt("off"))
    diags = verify_markers(program)
    assert len(diags) == 1
    assert diags[0].severity == "warning"
    assert "removable marker" in diags[0].message


def test_fixed_point_catches_second_iteration():
    # Outer mixed loop over [sw, hw]: iteration 2 re-enters with the
    # hardware ON, so the leading OFF marker is load-bearing.  A single
    # forward pass from the initial OFF state would call its deletion
    # safe; the fixed point must not.
    program = build_program(("sw", "hw"))
    insert_markers(program)
    sites = _marker_sites(program)
    off_sites = [s for s in sites if not s[2].activates]
    assert off_sites, "emitter placed no OFF marker"
    container, index, _marker, _ancestors = off_sites[0]
    del container[index]
    diags = verify_markers(program)
    assert any(
        d.severity == "error" and "'sw' region entered" in d.message
        for d in diags
    )


def test_zero_trip_loop_joins_exit_state():
    # A loop that may run zero times cannot be trusted to establish a
    # state: after it, the state is the join of before/inside, which
    # satisfies no requirement.
    b = ProgramBuilder("zerotrip")
    A = b.array("A", (8,))
    i = var("i")
    maybe = loop("z", 0, 0, [MarkerStmt("on")])
    hw = loop("i", 0, 4, [stmt(reads=[A[i]])])
    hw.preference = "hw"
    b.append(maybe, hw)
    diags = verify_markers(b.build(), check_minimality=False)
    assert any(
        "'hw' region entered with hardware state UNKNOWN" in d.message
        for d in diags
    )


def test_definitely_executing_loop_propagates_state():
    # The same shape with a provably non-empty loop is fine: the ON
    # from inside the loop definitely reaches the hw region.
    b = ProgramBuilder("onetrip")
    A = b.array("A", (8,))
    i = var("i")
    certain = loop("z", 0, 2, [MarkerStmt("on")])
    hw = loop("i", 0, 4, [stmt(reads=[A[i]])])
    hw.preference = "hw"
    b.append(certain, hw)
    assert verify_markers(b.build(), check_minimality=False) == []

"""Unit tests for the interval bounds analysis."""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.verify import Interval, verify_bounds
from repro.compiler.verify.bounds import (
    definitely_executes,
    eval_interval,
    loop_var_interval,
)


def test_eval_interval_mixed_coefficients():
    expr = var("i") * 2 - var("j") + 3
    env = {"i": Interval(0, 4), "j": Interval(1, 2)}
    assert eval_interval(expr, env) == Interval(1, 10)


def test_eval_interval_unbound_variable_is_none():
    assert eval_interval(var("i"), {}) is None


def test_loop_var_interval_min_upper():
    inner = loop("t", var("tt"), MinExpr(16, var("tt") + 4), [])
    env = {"tt": Interval(0, 12)}
    assert loop_var_interval(inner, env) == Interval(0, 15)


def test_loop_var_interval_step_sharpening():
    unrolled = loop("i", 0, 8, [], step=2)
    assert loop_var_interval(unrolled, {}) == Interval(0, 6)


def test_tile_point_loop_definitely_executes():
    # min(N, tt+T) - tt stays >= min(N - tt, T) because the subtraction
    # happens symbolically; the uncorrelated interval difference would
    # be 16 - 12 - ... and wrongly admit zero trips.
    inner = loop("t", var("tt"), MinExpr(14, var("tt") + 4), [])
    assert definitely_executes(inner, {"tt": Interval(0, 12)})


def test_zero_trip_loop_not_definitely_executing():
    assert not definitely_executes(loop("t", 3, 3, []), {})


def test_in_bounds_program_is_clean():
    b = ProgramBuilder("clean")
    A = b.array("A", (8, 8))
    i, j = var("i"), var("j")
    b.append(loop("i", 0, 8, [loop("j", 0, 8, [
        stmt(writes=[A[i, j]], reads=[A[i, j]]),
    ])]))
    assert verify_bounds(b.build()) == []


def test_out_of_bounds_access_flagged():
    b = ProgramBuilder("oob")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 9, [stmt(reads=[A[i]])]))
    diags = verify_bounds(b.build())
    assert len(diags) == 1
    assert diags[0].analysis == "bounds"
    assert "extent is 8" in diags[0].message
    assert "ref A[i]" in diags[0].node


def test_tile_remainder_loop_in_bounds():
    # N = 10, T = 4: the last tile is a remainder tile; the min upper
    # must keep the point loop inside the array.
    b = ProgramBuilder("tiled")
    A = b.array("A", (10,))
    t = var("t")
    b.append(loop("tt", 0, 10, [
        loop("t", var("tt"), MinExpr(10, var("tt") + 4), [
            stmt(writes=[A[t]], reads=[A[t]]),
        ]),
    ], step=4))
    assert verify_bounds(b.build()) == []


def test_unroll_shifted_copies_in_bounds():
    b = ProgramBuilder("unrolled")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 8, [
        stmt(reads=[A[i], A[i + 1]]),
    ], step=2))
    assert verify_bounds(b.build()) == []


def test_unroll_copy_past_the_end_flagged():
    b = ProgramBuilder("unrolled_bad")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(reads=[A[i + 2]])], step=2))
    diags = verify_bounds(b.build())
    assert any("spans [2, 8]" in d.message for d in diags)


def test_provably_empty_loop_warns():
    b = ProgramBuilder("empty")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 5, 3, [stmt(reads=[A[i]])]))
    diags = verify_bounds(b.build())
    assert len(diags) == 1
    assert diags[0].severity == "warning"
    assert "never executes" in diags[0].message

"""Unit tests for the structural well-formedness analysis."""

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import ArrayDecl
from repro.compiler.ir.stmts import MarkerStmt
from repro.compiler.verify import verify_structure


def simple_program():
    b = ProgramBuilder("demo")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(writes=[A[i]], reads=[A[i]])]))
    return b.build(), A


def messages(diagnostics):
    return [d.message for d in diagnostics]


def test_clean_program_has_no_diagnostics():
    program, _ = simple_program()
    assert verify_structure(program) == []


def test_rank_mismatch_after_decl_corruption():
    program, A = simple_program()
    # Simulate a transform corrupting the declaration in place: the
    # existing rank-1 references now disagree with the rank-2 decl.
    A.shape = (8, 8)
    A.dim_order = (0, 1)
    diags = verify_structure(program)
    assert any("1 subscript(s) for rank-2" in m for m in messages(diags))
    assert all(d.analysis == "structure" for d in diags)
    assert all(d.program == "demo" for d in diags)


def test_shadowed_loop_variable():
    b = ProgramBuilder("shadow")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, 4, [loop("i", 0, 4, [stmt(reads=[A[i]])])]))
    diags = verify_structure(b.build())
    assert any("shadows an enclosing loop" in m for m in messages(diags))
    assert any(d.node == "loop i" for d in diags)


def test_out_of_scope_subscript_variable():
    b = ProgramBuilder("scope")
    A = b.array("A", (8,))
    b.append(loop("i", 0, 8, [stmt(reads=[A[var("j")]])]))
    diags = verify_structure(b.build())
    assert any("out-of-scope variable(s) ['j']" in m for m in messages(diags))


def test_out_of_scope_bound_variable():
    b = ProgramBuilder("bound")
    A = b.array("A", (8,))
    i = var("i")
    b.append(loop("i", 0, var("n"), [stmt(reads=[A[i]])]))
    diags = verify_structure(b.build())
    assert any(
        "upper bound" in m and "['n']" in m for m in messages(diags)
    )


def test_non_positive_step_detected():
    program, _ = simple_program()
    program.body[0].step = 0
    diags = verify_structure(program)
    assert any("non-positive step" in m for m in messages(diags))


def test_stale_declaration_alias_detected():
    b = ProgramBuilder("alias")
    b.array("A", (8,))
    ghost = ArrayDecl(name="A", shape=(8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(reads=[ghost[i]])]))
    diags = verify_structure(b.build())
    assert any("stale alias" in m for m in messages(diags))


def test_undeclared_array_detected():
    b = ProgramBuilder("ghost")
    b.array("A", (8,))
    other = ArrayDecl(name="B", shape=(8,))
    i = var("i")
    b.append(loop("i", 0, 8, [stmt(reads=[other[i]])]))
    diags = verify_structure(b.build())
    assert any("not declared in the program" in m for m in messages(diags))


def test_bad_dim_order_detected():
    program, A = simple_program()
    A.dim_order = (1,)
    diags = verify_structure(program)
    assert any("not a permutation" in m for m in messages(diags))


def test_marker_inside_uniform_region():
    program, _ = simple_program()
    head = program.body[0]
    head.preference = "sw"
    head.body.insert(0, MarkerStmt("off"))
    diags = verify_structure(program)
    assert any("marker inside a uniform region" in m for m in messages(diags))
    assert any("marker HW_OFF" in d.node for d in diags)


def test_invalid_marker_kind_detected():
    program, _ = simple_program()
    marker = MarkerStmt("on")
    marker.kind = "bogus"  # corrupt post-construction
    program.body.append(marker)
    diags = verify_structure(program)
    assert any("invalid marker kind" in m for m in messages(diags))


def test_unknown_node_type_in_body():
    program, _ = simple_program()
    program.body.append("not a node")
    diags = verify_structure(program)
    assert any("unknown node type str" in m for m in messages(diags))

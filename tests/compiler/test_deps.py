"""The dependence-relation engine, unit-tested and differential-tested.

The unit tests pin the engine's answers on hand-analyzed nests: exact
distances, direction vectors, kinds, the merged ``*`` view, the
rank-mismatch blocker, and the cross-nest fusion/fission primitives.

The Hypothesis differential test is the engine's ground truth: random
small affine nests are *executed* over their full iteration space, the
dependences that actually occur are collected, and every one of them
must be covered by a predicted relation whose directions match and
whose pinned distances agree.  Soundness, checked by brute force.
"""

from __future__ import annotations

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.analysis.deps import (
    ANY,
    EQ,
    GT,
    LT,
    Permutation,
    Skew,
    Tiling,
    UnrollJam,
    analyze_nest,
    fission_preventing,
    fusion_preventing,
    nest_dependences,
)
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import AffineExpr, var
from repro.compiler.ir.refs import AffineRef


def nest(body_factory, bounds, order=None):
    """A perfect nest over ``bounds`` = [(var, lo, hi), ...]."""
    order = order or [name for name, _, _ in bounds]
    inner = body_factory()
    for name, lo, hi in reversed(bounds):
        inner = [loop(name, lo, hi, inner)]
    return inner[0]


class TestRelations:
    def _arrays(self, n=32):
        b = ProgramBuilder("t")
        return b.array("A", (n, n)), b.array("B", (n, n))

    def test_exact_uniform_distance(self):
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        head = nest(
            lambda: [stmt(writes=[A[i, j]], reads=[A[i - 1, j - 2]])],
            [("i", 1, 16), ("j", 2, 16)],
        )
        deps = nest_dependences(head)
        assert deps.analyzable
        assert len(deps.relations) == 1
        rel = deps.relations[0]
        assert rel.kind == "flow"
        assert rel.directions == (LT, LT)
        assert rel.distance == (1, 2)

    def test_anti_and_output_kinds(self):
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        head = nest(
            lambda: [
                stmt(writes=[A[i, j]], reads=[A[i + 1, j]]),
                stmt(writes=[A[i, j]], reads=[]),
            ],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        kinds = {rel.kind for rel in deps.relations}
        # read A[i+1,j] before the write one i later: anti; the two
        # writes of A[i,j] in one iteration: output.
        assert "anti" in kinds
        assert "output" in kinds

    def test_loop_independent_relation(self):
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        head = nest(
            lambda: [stmt(writes=[A[i, j]], reads=[A[i, j]])],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        assert len(deps.relations) == 1
        assert deps.relations[0].loop_independent
        assert deps.relations[0].distance == (0, 0)

    def test_disjoint_slices_are_independent(self):
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        head = nest(
            lambda: [stmt(writes=[A[i, 0]], reads=[A[i, 1]])],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        # The write repeats across j (a real output self-dependence),
        # but the constant column slices never overlap: no flow/anti.
        assert all(rel.kind == "output" for rel in deps.relations)

    def test_gcd_filter_kills_stride_mismatch(self):
        # A[2i] vs A[2i+1]: even vs odd elements, never equal.
        b = ProgramBuilder("t")
        A = b.array("A", (64,))
        i = var("i")
        head = nest(
            lambda: [stmt(writes=[A[i * 2]], reads=[A[i * 2 + 1]])],
            [("i", 0, 16)],
        )
        assert nest_dependences(head).relations == []

    def test_coupled_subscript_direction(self):
        # A[i, j] written, A[j, i] read: structurally misaligned for
        # the legacy exact test, but the engine still bounds it.
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        head = nest(
            lambda: [stmt(writes=[A[i, j]], reads=[A[j, i]])],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        assert deps.analyzable
        assert deps.relations  # i' = j, j' = i is feasible
        assert not deps.fully_permutable()

    def test_merged_view_collapses_to_star(self):
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        # A[i, j] vs A[i, 2]: the j level can be <, = or > depending
        # on where j sits relative to 2 — expanded relations disagree,
        # the merged view shows '*'.
        head = nest(
            lambda: [stmt(writes=[A[i, j]], reads=[A[i, 2]])],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        assert len(deps.relations) > len(deps.merged())
        anti = [rel for rel in deps.merged() if rel.kind == "anti"]
        assert anti and anti[0].directions[1] == ANY

    def test_rank_mismatch_is_unanalyzable_not_truncated(self):
        from repro.compiler.ir.refs import ArrayDecl

        b = ProgramBuilder("t")
        A = b.array("A", (8, 8))
        flat = ArrayDecl("A", (64,))  # same name, rank 1: aliasing bug
        i, j = var("i"), var("j")
        head = nest(
            lambda: [stmt(writes=[A[i, j]], reads=[AffineRef(flat, (var("i"),))])],
            [("i", 0, 8), ("j", 0, 8)],
        )
        deps = nest_dependences(head)
        assert not deps.analyzable
        assert any("rank mismatch" in bad.reason for bad in deps.unanalyzable)
        verdict = deps.legal(Tiling())
        assert not verdict
        assert "unanalyzable" in verdict.reason

    def test_symbolic_bounds_still_solve(self):
        # Inner bounds depend on the outer variable (triangular nest).
        A, _ = self._arrays()
        i, j = var("i"), var("j")
        body = [stmt(writes=[A[i, j]], reads=[A[i - 1, j]])]
        head = loop("i", 1, 16, [loop("j", 0, var("i") + 1, body)])
        deps = nest_dependences(head)
        assert deps.analyzable
        assert any(rel.directions[0] == LT for rel in deps.relations)


class TestLegality:
    def _nest_with(self, write_sub, read_sub, bounds=None):
        b = ProgramBuilder("t")
        A = b.array("A", (32, 32))
        head = nest(
            lambda: [stmt(writes=[A[write_sub]], reads=[A[read_sub]])],
            bounds or [("i", 1, 16), ("j", 1, 16)],
        )
        return nest_dependences(head)

    def test_interchange_of_uniform_dependence(self):
        i, j = var("i"), var("j")
        deps = self._nest_with((i, j), (i - 1, j - 1))
        assert deps.legal(Permutation((1, 0)))

    def test_interchange_of_skewed_dependence_refused(self):
        i, j = var("i"), var("j")
        deps = self._nest_with((i, j), (i - 1, j + 1))
        verdict = deps.legal(Permutation((1, 0)))
        assert not verdict
        assert "lexicographically negative" in verdict.reason

    def test_tiling_requires_full_permutability(self):
        i, j = var("i"), var("j")
        assert self._nest_with((i, j), (i - 1, j - 1)).legal(Tiling())
        assert not self._nest_with((i, j), (i - 1, j + 1)).legal(Tiling())

    def test_unroll_jam_forward_suffix_is_legal(self):
        # (1, 0): the jammed copies never touch the same element out
        # of order — the rule the legacy all-zero test got wrong.
        i, j = var("i"), var("j")
        assert self._nest_with((i, j), (i - 1, j)).legal(UnrollJam(0))

    def test_unroll_jam_reversed_suffix_refused(self):
        i, j = var("i"), var("j")
        verdict = self._nest_with((i, j), (i - 1, j + 1)).legal(
            UnrollJam(0)
        )
        assert not verdict
        assert "jammed copies" in verdict.reason

    def test_skew_makes_wavefront_tileable(self):
        i, j = var("i"), var("j")
        deps = self._nest_with((i, j), (i - 1, j + 1))
        assert not deps.fully_permutable()
        assert deps.skew_factor(wrt=0, level=1) == 1
        assert deps.legal(Skew(wrt=0, level=1, factor=1))
        skewed = deps.skewed(wrt=0, level=1, factor=1)
        assert skewed.fully_permutable()

    def test_skew_factor_scales_with_distance(self):
        i, j = var("i"), var("j")
        deps = self._nest_with((i, j), (i - 1, j + 3), bounds=[("i", 1, 16), ("j", 1, 12)])
        assert deps.skew_factor(wrt=0, level=1) == 3

    def test_skew_cannot_fix_unpinned_backward_inner(self):
        # A[i, j] vs A[i-1, 2]: a (<, >) relation exists whose inner
        # distance the subscripts do not pin — no finite factor is
        # provably enough.
        i, j = var("i"), var("j")
        deps = self._nest_with((i, j), (i - 1, 2))
        assert not deps.fully_permutable()
        assert deps.skew_factor(wrt=0, level=1) is None


class TestCrossNest:
    def _pair(self, first_refs, second_refs, n=16):
        b = ProgramBuilder("t")
        A = b.array("A", (n,))
        B = b.array("B", (n,))
        arrays = {"A": A, "B": B}
        i, j = var("i"), var("j")

        def build(loop_var, refs):
            w, reads = refs
            s = stmt(
                writes=[arrays[w[0]][w[1](var(loop_var))]],
                reads=[arrays[r[0]][r[1](var(loop_var))]
                       for r in reads],
            )
            return loop(loop_var, 1, n - 1, [s])

        first = build("i", first_refs)
        second = build("j", second_refs)
        stmts1 = list(first.all_statements())
        stmts2 = list(second.all_statements())
        return fusion_preventing(
            [first], [second], stmts1, stmts2, {"j": "i"}
        )

    def test_forward_reuse_fuses(self):
        reason = self._pair(
            (("B", lambda v: v), [("A", lambda v: v)]),
            (("A", lambda v: v), [("B", lambda v: v - 1)]),
        )
        assert reason is None

    def test_backward_flow_prevents_fusion(self):
        reason = self._pair(
            (("B", lambda v: v), [("A", lambda v: v)]),
            (("A", lambda v: v), [("B", lambda v: v + 1)]),
        )
        assert reason is not None
        assert "fusion-preventing" in reason
        assert "B" in reason

    def test_fission_of_independent_groups(self):
        b = ProgramBuilder("t")
        A = b.array("A", (16,))
        B = b.array("B", (16,))
        i = var("i")
        s1 = stmt(writes=[A[i]], reads=[A[i - 1]])
        s2 = stmt(writes=[B[i]], reads=[B[i - 1]])
        head = loop("i", 1, 16, [s1, s2])
        assert fission_preventing([head], [s1], [s2]) is None

    def test_fission_preventing_backward_use(self):
        b = ProgramBuilder("t")
        A = b.array("A", (16,))
        B = b.array("B", (16,))
        i = var("i")
        # s2 writes B[i]; s1 reads B[i-1] the *next* iteration — after
        # fission every s1 runs first and reads stale values.
        s1 = stmt(writes=[A[i]], reads=[B[i - 1]])
        s2 = stmt(writes=[B[i]], reads=[A[i]])
        head = loop("i", 1, 16, [s1, s2])
        reason = fission_preventing([head], [s1], [s2])
        assert reason is not None
        assert "fission-preventing" in reason


# -- differential ground truth -------------------------------------------

_COEF = st.integers(min_value=-2, max_value=2)
_CONST = st.integers(min_value=-3, max_value=3)


@st.composite
def small_nests(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    names = [f"v{k}" for k in range(depth)]
    bounds = []
    for name in names:
        lo = draw(st.integers(min_value=0, max_value=1))
        trip = draw(st.integers(min_value=2, max_value=3))
        bounds.append((name, lo, lo + trip))

    def subscript():
        expr = AffineExpr(const=draw(_CONST))
        for name in names:
            expr = expr + var(name) * draw(_COEF)
        return expr

    n_stmts = draw(st.integers(min_value=1, max_value=2))
    statements = []
    for _ in range(n_stmts):
        statements.append(
            (
                subscript(),  # one write
                [subscript() for _ in range(draw(
                    st.integers(min_value=0, max_value=2)))],
            )
        )
    return bounds, statements


def _build(bounds, statements):
    b = ProgramBuilder("rand")
    A = b.array("A", (64,))
    body = [
        stmt(writes=[AffineRef(A, (w,))],
             reads=[AffineRef(A, (r,)) for r in reads])
        for w, reads in statements
    ]
    head = nest(lambda: body, bounds)
    return head, list(head.perfect_nest_loops())


def _brute_force(bounds, statements):
    """Every dependence that actually occurs, as
    (source position, sink position, directions, distances)."""
    by_element = {}
    ranges = [range(lo, hi) for _, lo, hi in bounds]
    names = [name for name, _, _ in bounds]
    for point in product(*ranges):
        env = dict(zip(names, point))
        for index, (w, reads) in enumerate(statements):
            for slot, r in enumerate(reads):
                by_element.setdefault(r.eval(env), []).append(
                    (point, (index, 0, slot), False)
                )
            by_element.setdefault(w.eval(env), []).append(
                (point, (index, 1, 0), True)
            )
    observed = set()
    for touches in by_element.values():
        touches.sort(key=lambda t: (t[0], t[1]))
        for a in range(len(touches)):
            for b in range(a + 1, len(touches)):
                src, snk = touches[a], touches[b]
                if not (src[2] or snk[2]):
                    continue
                delta = tuple(y - x for x, y in zip(src[0], snk[0]))
                dirs = tuple(
                    LT if d > 0 else (EQ if d == 0 else GT)
                    for d in delta
                )
                observed.add((src[1], snk[1], dirs, delta))
    return observed


@given(small_nests())
@settings(max_examples=60, deadline=None)
def test_engine_covers_every_executed_dependence(case):
    bounds, statements = case
    head, chain = _build(bounds, statements)
    deps = analyze_nest(chain)
    assert deps.analyzable
    predicted = deps.relations
    for src, snk, dirs, delta in _brute_force(bounds, statements):
        matches = [
            rel for rel in predicted
            if rel.source == src and rel.sink == snk
            and rel.directions == dirs
            and all(
                d is None or d == got
                for d, got in zip(rel.distance, delta)
            )
        ]
        assert matches, (
            f"executed dependence {src}->{snk} {dirs} {delta} "
            f"not predicted; engine said {predicted}"
        )


@given(small_nests())
@settings(max_examples=30, deadline=None)
def test_merged_view_covers_expanded_relations(case):
    bounds, statements = case
    _, chain = _build(bounds, statements)
    deps = analyze_nest(chain)
    merged = {(rel.source, rel.sink): rel for rel in deps.merged()}
    for rel in deps.relations:
        m = merged[(rel.source, rel.sink)]
        for level, direction in enumerate(rel.directions):
            assert m.directions[level] in (direction, ANY)

"""Unit tests for array declarations and references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import (
    AffineRef,
    ArrayDecl,
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    RegisterRef,
    ScalarRef,
)


class TestArrayDecl:
    def test_row_major_addressing(self):
        a = ArrayDecl("A", (4, 8), element_size=8, base=1000)
        assert a.address_of((0, 0)) == 1000
        assert a.address_of((0, 1)) == 1008
        assert a.address_of((1, 0)) == 1000 + 8 * 8

    def test_column_major_addressing(self):
        a = ArrayDecl("A", (4, 8), dim_order=(1, 0), base=0)
        assert a.address_of((1, 0)) == 8       # dim 0 is fastest
        assert a.address_of((0, 1)) == 4 * 8

    def test_padding_extends_rows(self):
        a = ArrayDecl("A", (4, 8), pad=2)
        assert a.address_of((1, 0)) == (8 + 2) * 8
        assert a.footprint_bytes == 4 * 10 * 8

    def test_3d_horner(self):
        a = ArrayDecl("A", (2, 3, 4))
        assert a.address_of((1, 2, 3)) == ((1 * 3 + 2) * 4 + 3) * 8

    def test_strides(self):
        a = ArrayDecl("A", (4, 8))
        assert a.stride_of_dim(1) == 1
        assert a.stride_of_dim(0) == 8
        col = a.with_layout((1, 0))
        assert col.stride_of_dim(0) == 1
        assert col.stride_of_dim(1) == 4

    def test_layout_bijective(self):
        a = ArrayDecl("A", (5, 7), dim_order=(1, 0), pad=3)
        seen = set()
        for i in range(5):
            for j in range(7):
                seen.add(a.address_of((i, j)))
        assert len(seen) == 35  # no two elements share an address

    def test_bad_dim_order_rejected(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (2, 2), dim_order=(0, 0))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (0, 4))

    def test_getitem_builds_affine_ref(self):
        a = ArrayDecl("A", (4, 4))
        ref = a[var("i"), var("j") + 1]
        assert isinstance(ref, AffineRef)
        assert ref.address({"i": 1, "j": 0}) == a.address_of((1, 1))

    @given(
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        st.sampled_from([(0, 1), (1, 0)]),
        st.integers(0, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_addresses_stay_inside_footprint(self, shape, order, pad):
        a = ArrayDecl("A", shape, dim_order=order, pad=pad, base=0)
        for i in range(shape[0]):
            for j in range(shape[1]):
                addr = a.address_of((i, j))
                assert 0 <= addr < a.footprint_bytes


class TestReferences:
    def test_classification(self):
        a = ArrayDecl("A", (4,))
        idx = ArrayDecl("I", (4,), data=np.arange(4))
        assert ScalarRef("x").analyzable
        assert a[var("i")].analyzable
        assert not IndexedRef(a, idx[var("i")]).analyzable
        assert not PointerChaseRef(a, "walk").analyzable
        assert not NonAffineRef(a, lambda b: (b["i"] ** 2,)).analyzable
        assert RegisterRef(a[var("i")]).analyzable

    def test_affine_ref_wrong_rank(self):
        a = ArrayDecl("A", (4, 4))
        with pytest.raises(ValueError):
            AffineRef(a, (var("i"),))

    def test_indexed_ref_resolves_through_data(self):
        data = np.array([3, 0, 2, 1])
        idx = ArrayDecl("IP", (4,), element_size=4, data=data, base=100)
        target = ArrayDecl("G", (8,), base=1000)
        ref = IndexedRef(target, idx[var("j")], offset=2)
        index_addr, data_addr = ref.addresses({"j": 0})
        assert index_addr == 100
        assert data_addr == 1000 + (3 + 2) * 8

    def test_indexed_ref_requires_data(self):
        idx = ArrayDecl("IP", (4,))
        target = ArrayDecl("G", (8,))
        ref = IndexedRef(target, idx[var("j")])
        with pytest.raises(ValueError):
            ref.addresses({"j": 0})

    def test_pointer_chase_walks_successors(self):
        chain = np.array([2, 0, 1])
        heap = ArrayDecl(
            "H", (3,), element_size=32, data=chain, base=0
        )
        ref = PointerChaseRef(heap, "walk", field_offset=8, node_size=32)
        addr, nxt = ref.address_and_next(0)
        assert addr == 8
        assert nxt == 2
        addr, nxt = ref.address_and_next(nxt)
        assert addr == 2 * 32 + 8
        assert nxt == 1

    def test_non_affine_executes_fn(self):
        a = ArrayDecl("D", (100,), base=0)
        ref = NonAffineRef(a, lambda b: (b["i"] * b["i"],), "i*i")
        assert ref.address({"i": 7}) == 49 * 8

    def test_register_ref_reports_array(self):
        a = ArrayDecl("A", (4,))
        assert RegisterRef(a[var("i")]).array_name == "A"

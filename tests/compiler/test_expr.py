"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir.expr import MinExpr, as_expr, const, var


class TestArithmetic:
    def test_variable_eval(self):
        i = var("i")
        assert i.eval({"i": 7}) == 7

    def test_affine_combination(self):
        i, j = var("i"), var("j")
        expr = 2 * i + j - 3
        assert expr.eval({"i": 5, "j": 1}) == 8

    def test_zero_coefficients_dropped(self):
        i = var("i")
        expr = i - i
        assert expr.is_constant
        assert expr.const == 0

    def test_negation(self):
        assert (-var("i")).eval({"i": 4}) == -4

    def test_rsub(self):
        assert (10 - var("i")).eval({"i": 3}) == 7

    def test_scaling_requires_int(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            var("i").eval({})

    def test_substitute(self):
        i, j = var("i"), var("j")
        expr = 3 * i + 1
        substituted = expr.substitute("i", j + 2)
        assert substituted.eval({"j": 1}) == 3 * 3 + 1

    def test_substitute_absent_is_noop(self):
        expr = var("i") + 1
        assert expr.substitute("k", var("j")) is expr


class TestIdentity:
    def test_equality_and_hash(self):
        a = var("i") + 2
        b = 2 + var("i")
        assert a == b
        assert hash(a) == hash(b)

    def test_int_equality(self):
        assert const(5) == 5
        assert not (var("i") == 5)

    def test_immutability(self):
        expr = var("i")
        with pytest.raises(AttributeError):
            expr.const = 3

    def test_deepcopy_shares(self):
        import copy
        expr = var("i") + 1
        assert copy.deepcopy(expr) is expr


class TestMinExpr:
    def test_eval(self):
        m = MinExpr(var("i") + 4, 10)
        assert m.eval({"i": 2}) == 6
        assert m.eval({"i": 100}) == 10

    def test_variables(self):
        m = MinExpr(var("i"), var("j") + 1)
        assert m.variables == {"i", "j"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MinExpr()

    def test_equality(self):
        assert MinExpr(var("i"), 5) == MinExpr(var("i"), 5)


@given(
    st.dictionaries(
        st.sampled_from(["i", "j", "k"]),
        st.integers(-10, 10),
        min_size=3,
        max_size=3,
    ),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-3, 3),
)
@settings(max_examples=100, deadline=None)
def test_affine_arithmetic_matches_int_arithmetic(bindings, a, b, scale):
    """(a*i + b*j + c) evaluated structurally equals direct arithmetic."""
    i, j = var("i"), var("j")
    expr = (a * i + b * j + 7) * scale - j
    expected = (
        a * bindings["i"] + b * bindings["j"] + 7
    ) * scale - bindings["j"]
    assert expr.eval(bindings) == expected


@given(st.integers(-100, 100), st.integers(-100, 100))
@settings(max_examples=50, deadline=None)
def test_as_expr_round_trip(x, y):
    assert as_expr(x).eval({}) == x
    assert (as_expr(x) + as_expr(y)).const == x + y

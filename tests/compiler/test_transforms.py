"""Tests for the loop and data transformations."""

import numpy as np

from repro.compiler.analysis.dependence import (
    INDEPENDENT,
    distance_vectors,
    pair_distance,
    permutation_legal,
)
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import RegisterRef
from repro.compiler.optimizer import LocalityOptimizer
from repro.compiler.regions.detect import detect_regions
from repro.compiler.transforms.interchange import apply_interchange
from repro.compiler.transforms.layout import (
    apply_layouts,
    apply_padding,
    choose_layouts,
)
from repro.compiler.transforms.scalar_replacement import (
    apply_scalar_replacement,
)
from repro.compiler.transforms.tiling import apply_tiling
from repro.compiler.transforms.unroll import apply_unroll_and_jam
from repro.params import base_config
from repro.tracegen.interpreter import TraceGenerator


def addresses_touched(program):
    """The multiset of (op, addr) a program's execution touches."""
    trace = TraceGenerator(program.clone()).generate()
    return sorted(
        (inst.op, inst.arg) for inst in trace if inst.is_memory
    )


def address_sets(program):
    trace = TraceGenerator(program.clone()).generate()
    return {inst.arg for inst in trace if inst.is_memory}


def paper_example(n=16):
    """The Section 3.2 nest: U[j] += V[j][i] * W[i][j]."""
    b = ProgramBuilder("example")
    u = b.array("U", (n,))
    v = b.array("V", (n, n))
    w = b.array("W", (n, n))
    i, j = var("i"), var("j")
    b.append(loop("i", 0, n, [loop("j", 0, n, [
        stmt(writes=[u[j]], reads=[u[j], v[j, i], w[i, j]], work=2),
    ])]))
    return b.build()


class TestDependence:
    def _refs(self, n=8):
        b = ProgramBuilder("d")
        a = b.array("A", (n, n))
        return a

    def test_uniform_distance(self):
        a = self._refs()
        i, j = var("i"), var("j")
        dist = pair_distance(a[i, j], a[i - 1, j], ["i", "j"])
        assert dist == (1, 0)

    def test_independent_constants(self):
        a = self._refs()
        i = var("i")
        assert pair_distance(a[i, 0], a[i, 1], ["i"]) == INDEPENDENT

    def test_structural_mismatch_unknown(self):
        a = self._refs()
        i, j = var("i"), var("j")
        assert pair_distance(a[i, j], a[j, i], ["i", "j"]) is None

    def test_coupled_subscript_unknown(self):
        a = self._refs()
        i, j = var("i"), var("j")
        assert pair_distance(a[i + j, j], a[i + j, j], ["i", "j"]) is None

    def test_rank_mismatch_unknown_not_truncated(self):
        # Same array name declared with different ranks: zipping the
        # subscripts would silently drop one and "answer" (0,); the
        # analysis must refuse instead.
        from repro.compiler.ir.refs import AffineRef, ArrayDecl

        a = self._refs()
        flat = ArrayDecl("A", (64,))
        i, j = var("i"), var("j")
        two_d = a[i, j]
        one_d = AffineRef(flat, (var("i"),))
        assert pair_distance(two_d, one_d, ["i", "j"]) is None
        assert pair_distance(one_d, two_d, ["i", "j"]) is None

    def test_permutation_legality(self):
        assert permutation_legal([(0, 1)], (1, 0))   # becomes (1, 0): ok
        assert not permutation_legal([(1, -1)], (1, 0))  # (-1, 1): bad
        assert not permutation_legal(None, (0, 1))

    def test_vectors_for_stencil(self):
        a = self._refs()
        i, j = var("i"), var("j")
        statements = [
            stmt(writes=[a[i, j]], reads=[a[i, j - 1]], work=1),
        ]
        vectors = distance_vectors(["i", "j"], statements)
        assert vectors == [(0, 1)]


class TestInterchange:
    def test_paper_example_moves_i_innermost(self):
        program = paper_example()
        detect_regions(program)
        head = program.top_level_loops()[0]
        result = apply_interchange(head, line_size=32)
        assert result.applied
        assert result.order_after == ("j", "i")

    def test_interchange_preserves_address_set(self):
        before = paper_example()
        after = paper_example()
        detect_regions(after)
        apply_interchange(after.top_level_loops()[0], 32)
        assert address_sets(before) == address_sets(after)

    def test_recurrence_blocks_permutation(self):
        b = ProgramBuilder("rec")
        a = b.array("A", (8, 8))
        i, j = var("i"), var("j")
        # A[i][j] = A[i-1][j+1]: distance (1,-1); interchange illegal.
        b.append(loop("i", 1, 8, [loop("j", 0, 7, [
            stmt(writes=[a[i, j]], reads=[a[i - 1, j + 1]], work=1),
        ])]))
        program = b.build()
        result = apply_interchange(program.top_level_loops()[0], 32)
        assert not result.applied

    def test_adi_column_sweep_interchanges(self):
        b = ProgramBuilder("adi_col")
        x = b.array("X", (16, 16))
        a = b.array("A", (16, 16))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, 16, [loop("j", 1, 16, [
            stmt(writes=[x[j, i]], reads=[x[j - 1, i], a[j, i]], work=1),
        ])]))
        program = b.build()
        result = apply_interchange(program.top_level_loops()[0], 32)
        assert result.applied
        assert result.order_after == ("j", "i")

    def test_depth_one_nest_skipped(self):
        b = ProgramBuilder("d1")
        a = b.array("A", (8,))
        b.append(loop("i", 0, 8, [stmt(reads=[a[var("i")]], work=1)]))
        result = apply_interchange(b.build().top_level_loops()[0], 32)
        assert not result.applied


class TestLayout:
    def test_paper_example_layouts(self):
        """After interchange, V stays row-major and W goes column-major
        (Section 3.2).  The arrays must be large relative to L1 or the
        effective-spatial test rightly concludes layout cannot help."""
        program = paper_example(n=64)
        detect_regions(program)
        apply_interchange(program.top_level_loops()[0], 32)
        result = choose_layouts(program, line_size=32, l1_size=1024)
        apply_layouts(program, result)
        assert program.arrays["V"].dim_order == (0, 1)
        assert program.arrays["W"].dim_order == (1, 0)

    def test_layout_preserves_element_count(self):
        program = paper_example(n=64)
        detect_regions(program)
        before = len(address_sets(program))
        apply_interchange(program.top_level_loops()[0], 32)
        result = choose_layouts(program, 32, 1024)
        apply_layouts(program, result)
        assert len(address_sets(program)) == before

    def test_effective_spatial_reference_abstains(self):
        """A (3, N) component array swept by a short inner loop keeps
        its layout (the chaos update-phase case)."""
        b = ProgramBuilder("comp")
        vel = b.array("VEL", (3, 64))
        n, d = var("n"), var("d")
        b.append(loop("n", 0, 64, [loop("d", 0, 3, [
            stmt(writes=[vel[d, n]], reads=[vel[d, n]], work=1),
        ])]))
        program = b.build()
        detect_regions(program)
        result = choose_layouts(program, 32, 4096)
        assert "VEL" not in result.chosen

    def test_wide_table_goes_column_store(self):
        b = ProgramBuilder("scan")
        table = b.array("T", (256, 16))
        r = var("r")
        b.append(loop("r", 0, 256, [
            stmt(reads=[table[r, 0], table[r, 5]], work=1),
        ]))
        program = b.build()
        detect_regions(program)
        result = choose_layouts(program, 32, 4096)
        apply_layouts(program, result)
        assert program.arrays["T"].dim_order == (1, 0)


class TestPadding:
    def test_padding_changes_only_addresses(self):
        program = paper_example()
        detect_regions(program)
        before = len(address_sets(program))
        padded = apply_padding(program, 32)
        assert padded  # something was padded
        assert len(address_sets(program)) == before

    def test_small_fastest_extent_not_intra_padded(self):
        b = ProgramBuilder("p")
        vel = b.array("VEL", (64, 3))
        n, d = var("n"), var("d")
        b.append(loop("n", 0, 64, [loop("d", 0, 3, [
            stmt(reads=[vel[n, d]], work=1),
        ])]))
        program = b.build()
        detect_regions(program)
        apply_padding(program, 32)
        assert program.arrays["VEL"].pad == 0       # 3 < 8 * line elems
        assert program.arrays["VEL"].base_skew > 0  # but still skewed

    def test_candidate_filter(self):
        program = paper_example()
        detect_regions(program)
        apply_padding(program, 32, candidates={"V"})
        assert program.arrays["V"].base_skew > 0
        assert program.arrays["W"].base_skew == 0

    def test_idempotent(self):
        program = paper_example()
        detect_regions(program)
        first = apply_padding(program, 32)
        second = apply_padding(program, 32)
        assert first and not second


class TestTiling:
    def _matmul(self, n=32):
        b = ProgramBuilder("mm")
        c = b.array("C", (n, n))
        a = b.array("A", (n, n))
        bb = b.array("B", (n, n))
        i, j, k = var("i"), var("j"), var("k")
        b.append(loop("i", 0, n, [loop("j", 0, n, [loop("k", 0, n, [
            stmt(writes=[c[i, j]], reads=[c[i, j], a[i, k], bb[k, j]],
                 work=2),
        ])])]))
        return b.build()

    def test_matmul_tiles_when_footprint_exceeds_l1(self):
        program = self._matmul(32)
        head = program.top_level_loops()[0]
        result = apply_tiling(head, l1_bytes=2048)
        assert result.applied
        assert result.tile_size >= 4
        # The parent-visible loop object is now a tile loop.
        assert head.var.endswith("__t")

    def test_tiling_preserves_addresses(self):
        before = self._matmul(16)
        after = self._matmul(16)
        apply_tiling(after.top_level_loops()[0], l1_bytes=1024)
        assert sorted(address_sets(before)) == sorted(address_sets(after))
        # Same dynamic reference count, different order.
        assert (
            len(addresses_touched(before)) == len(addresses_touched(after))
        )

    def test_small_footprint_not_tiled(self):
        program = self._matmul(8)
        result = apply_tiling(
            program.top_level_loops()[0], l1_bytes=1 << 20
        )
        assert not result.applied
        assert result.reason == "footprint fits in L1"

    def test_no_outer_reuse_not_tiled(self):
        b = ProgramBuilder("copy")
        a = b.array("A", (64, 64))
        c = b.array("B", (64, 64))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, 64, [loop("j", 0, 64, [
            stmt(writes=[c[i, j]], reads=[a[i, j]], work=1),
        ])]))
        result = apply_tiling(b.build().top_level_loops()[0], 1024)
        assert not result.applied


class TestUnrollAndScalarReplacement:
    def test_unroll_and_jam_duplicates_body(self):
        program = paper_example()
        head = program.top_level_loops()[0]
        result = apply_unroll_and_jam(head, factor=2)
        assert result.applied
        inner = head.inner_loops[0]
        assert len(inner.body) == 2
        assert head.step == 2

    def test_unroll_preserves_addresses(self):
        before = paper_example()
        after = paper_example()
        apply_unroll_and_jam(after.top_level_loops()[0], 2)
        assert addresses_touched(before) == addresses_touched(after)

    def test_unroll_rejects_indivisible_trip(self):
        program = paper_example(n=15)
        result = apply_unroll_and_jam(program.top_level_loops()[0], 2)
        assert not result.applied

    def test_unroll_rejects_carried_dependence(self):
        b = ProgramBuilder("carried")
        a = b.array("A", (16, 16))
        i, j = var("i"), var("j")
        b.append(loop("i", 1, 16, [loop("j", 0, 16, [
            stmt(writes=[a[i, j]], reads=[a[i - 1, j]], work=1),
        ])]))
        result = apply_unroll_and_jam(b.build().top_level_loops()[0], 2)
        assert not result.applied

    def test_scalar_replacement_hoists_invariant(self):
        program = paper_example()
        detect_regions(program)
        head = program.top_level_loops()[0]
        apply_interchange(head, 32)  # U[j] becomes inner-invariant
        result = apply_scalar_replacement(head)
        assert result.promoted >= 1
        inner = head.inner_loops[0]
        refs = [r for s in inner.statements() for r in s.references]
        assert any(isinstance(r, RegisterRef) for r in refs)

    def test_scalar_replacement_reduces_memory_refs(self):
        before = paper_example()
        after = paper_example()
        detect_regions(after)
        head = after.top_level_loops()[0]
        apply_interchange(head, 32)
        apply_scalar_replacement(head)
        n_before = len(addresses_touched(before))
        n_after = len(addresses_touched(after))
        assert n_after < n_before

    def test_scalar_replacement_keeps_final_stores(self):
        """Each promoted written ref must still be stored exactly once
        per inner-loop execution (the epilogue)."""
        program = paper_example(n=8)
        detect_regions(program)
        head = program.top_level_loops()[0]
        assert apply_interchange(head, 32).applied
        apply_scalar_replacement(head)
        trace = TraceGenerator(program).generate()
        from repro.isa import Opcode
        u_base = program.arrays["U"].base
        u_end = u_base + program.arrays["U"].footprint_bytes
        stores = [
            inst for inst in trace
            if inst.op is Opcode.STORE and u_base <= inst.arg < u_end
        ]
        assert len(stores) == 8  # one per j


class TestOptimizerPipeline:
    def test_full_pipeline_on_example(self):
        program = paper_example(n=128)
        report = LocalityOptimizer(base_config().scaled(8)).optimize(program)
        assert report.regions is not None
        assert report.interchanged_nests == 1
        assert report.scalar.promoted >= 1
        assert "W" in report.layout.chosen

    def test_disabled_stages_do_nothing(self):
        program = paper_example()
        optimizer = LocalityOptimizer(
            base_config(),
            enable_interchange=False,
            enable_layout=False,
            enable_padding=False,
            enable_tiling=False,
            enable_unroll=False,
            enable_scalar_replacement=False,
        )
        before = addresses_touched(program)
        optimizer.optimize(program)
        assert addresses_touched(program) == before

    def test_hardware_regions_untouched(self):
        b = ProgramBuilder("hw")
        a = b.array("A", (64,))
        idx = b.index_array("IDX", np.arange(64))
        from repro.compiler.ir.refs import IndexedRef
        i = var("i")
        b.append(loop("i", 0, 64, [
            stmt(reads=[IndexedRef(a, idx[i]), IndexedRef(a, idx[i], 1)],
                 writes=[IndexedRef(a, idx[i])], work=1),
        ]))
        program = b.build()
        before = addresses_touched(program)
        LocalityOptimizer(base_config()).optimize(program)
        assert addresses_touched(program) == before

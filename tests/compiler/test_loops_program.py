"""Tests for loop-nest structure utilities and the Program container."""

import pytest

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.ir.loops import Loop
from repro.compiler.ir.program import Program
from repro.compiler.ir.refs import ArrayDecl
from repro.compiler.ir.stmts import MarkerStmt


def two_level(n=8):
    a = ArrayDecl("A", (n, n))
    i, j = var("i"), var("j")
    inner = loop("j", 0, n, [stmt(writes=[a[i, j]], work=1)])
    return a, loop("i", 0, n, [inner]), inner


class TestLoopStructure:
    def test_innermost_detection(self):
        _a, outer, inner = two_level()
        assert not outer.is_innermost
        assert inner.is_innermost
        assert outer.inner_loops == [inner]

    def test_walk_preorder(self):
        _a, outer, inner = two_level()
        nodes = list(outer.walk())
        assert nodes[0] is outer
        assert inner in nodes

    def test_nest_depth(self):
        _a, outer, _inner = two_level()
        assert outer.nest_depth() == 2

    def test_perfect_nest_detection(self):
        _a, outer, inner = two_level()
        assert outer.is_perfect_nest()
        assert outer.perfect_nest_loops() == [outer, inner]

    def test_imperfect_nest(self):
        a = ArrayDecl("A", (8,))
        i = var("i")
        inner = loop("j", 0, 8, [stmt(reads=[a[i]], work=1)])
        outer = loop("i", 0, 8, [stmt(reads=[a[i]], work=1), inner])
        assert not outer.is_perfect_nest()
        assert outer.perfect_nest_loops() == [outer]

    def test_trip_count_estimates(self):
        assert loop("i", 0, 10, []).trip_count_estimate() == 10
        assert loop("i", 2, 10, [], step=2).trip_count_estimate() == 4
        bounded = loop("i", 0, MinExpr(10, var("t") + 4), [])
        assert bounded.trip_count_estimate() == 10
        symbolic = loop("i", 0, var("n"), [])
        assert symbolic.trip_count_estimate(assumed_outer=7) == 7

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", var("z") * 0, var("z") * 0 + 4, [], step=0)

    def test_statements_direct_only(self):
        a = ArrayDecl("A", (8,))
        i = var("i")
        direct = stmt(reads=[a[i]], work=1)
        nested = stmt(writes=[a[i]], work=1)
        outer = loop("i", 0, 4, [direct, loop("j", 0, 4, [nested])])
        assert outer.statements() == [direct]
        assert list(outer.all_statements()) == [direct, nested]


class TestProgram:
    def build(self):
        b = ProgramBuilder("p")
        a = b.array("A", (8, 8))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, 8, [loop("j", 0, 8, [
            stmt(writes=[a[i, j]], work=1),
        ])]))
        return b.build()

    def test_walk_and_queries(self):
        program = self.build()
        assert len(list(program.loops())) == 2
        assert len(program.top_level_loops()) == 1
        assert len(list(program.all_statements())) == 1
        assert program.markers() == []

    def test_duplicate_array_rejected(self):
        program = self.build()
        with pytest.raises(ValueError):
            program.add_array(ArrayDecl("A", (4,)))

    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Program("p", {"X": ArrayDecl("Y", (4,))}, [])

    def test_clone_is_independent(self):
        program = self.build()
        clone = program.clone()
        clone.arrays["A"].dim_order = (1, 0)
        assert program.arrays["A"].dim_order == (0, 1)

    def test_clone_preserves_ref_aliasing(self):
        """References in a clone must alias the clone's declarations so
        in-place layout changes reach them."""
        program = self.build()
        clone = program.clone()
        statement = next(clone.all_statements())
        ref = statement.writes[0]
        assert ref.array is clone.arrays["A"]
        assert ref.array is not program.arrays["A"]

    def test_clone_shares_runtime_data(self):
        import numpy as np
        b = ProgramBuilder("d")
        idx = b.index_array("IDX", np.arange(16))
        program = b.build()
        clone = program.clone()
        assert clone.arrays["IDX"].data is program.arrays["IDX"].data

    def test_total_footprint(self):
        program = self.build()
        assert program.total_footprint_bytes() == 8 * 8 * 8

    def test_markers_listed(self):
        program = self.build()
        program.body.insert(0, MarkerStmt("on"))
        assert len(program.markers()) == 1

"""Tests for statement nodes and the program builder."""

import numpy as np
import pytest

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.stmts import MarkerStmt, Statement


class TestStatement:
    def test_references_order(self):
        b = ProgramBuilder("t")
        a = b.array("A", (4,))
        i = var("i")
        s = stmt(writes=[a[i]], reads=[a[i + 1], a[i + 2]], work=3)
        assert s.references == [a[i + 1], a[i + 2], a[i]]

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Statement(work=-1)

    def test_defaults(self):
        s = stmt()
        assert s.reads == [] and s.writes == []
        assert s.work == 1
        assert s.preference is None


class TestMarkerStmt:
    def test_kinds(self):
        assert MarkerStmt("on").activates
        assert not MarkerStmt("off").activates

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            MarkerStmt("toggle")


class TestProgramBuilder:
    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("t")
        b.array("A", (4,))
        with pytest.raises(ValueError):
            b.array("A", (8,))

    def test_index_array_carries_data(self):
        b = ProgramBuilder("t")
        data = np.arange(8)
        decl = b.index_array("IDX", data)
        assert decl.data is data
        assert decl.shape == (8,)
        assert decl.element_size == 4

    def test_loop_accepts_int_bounds(self):
        built = loop("i", 0, 10, [])
        assert built.lower.is_constant and built.upper.is_constant

    def test_build_collects_everything(self):
        b = ProgramBuilder("t")
        a = b.array("A", (4,))
        b.append(loop("i", 0, 4, [stmt(reads=[a[var("i")]], work=1)]))
        program = b.build()
        assert program.name == "t"
        assert set(program.arrays) == {"A"}
        assert len(program.body) == 1

"""Tests for reference classification, region detection, and markers."""

import numpy as np
import pytest

from repro.compiler.analysis.classify import (
    HARDWARE,
    MIXED,
    SOFTWARE,
    analyzable_ratio,
    classify_loop,
    count_references,
)
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import IndexedRef
from repro.compiler.ir.stmts import MarkerStmt
from repro.compiler.regions.detect import detect_regions
from repro.compiler.regions.markers import insert_markers


def affine_loop(name, array, n=8):
    i = var(name)
    return loop(name, 0, n, [
        stmt(writes=[array[i]], reads=[array[i]], work=1),
    ])


def irregular_loop(name, array, idx, n=8):
    i = var(name)
    return loop(name, 0, n, [
        stmt(
            reads=[IndexedRef(array, idx[i]), IndexedRef(array, idx[i], 1)],
            writes=[IndexedRef(array, idx[i])],
            work=1,
        ),
    ])


@pytest.fixture
def arrays():
    b = ProgramBuilder("fixture")
    a = b.array("A", (64,))
    idx = b.index_array("IDX", np.arange(8))
    return b, a, idx


class TestClassification:
    def test_affine_loop_is_software(self, arrays):
        _b, a, _idx = arrays
        assert classify_loop(affine_loop("i", a)) == SOFTWARE

    def test_irregular_loop_is_hardware(self, arrays):
        _b, a, idx = arrays
        assert classify_loop(irregular_loop("i", a, idx)) == HARDWARE

    def test_ratio_counts_all_nested_statements(self, arrays):
        _b, a, idx = arrays
        outer = loop("o", 0, 4, [
            affine_loop("i", a),
            irregular_loop("j", a, idx),
        ])
        analyzable, total = count_references(outer)
        # affine loop: 2 analyzable; irregular: 3 non-analyzable + the
        # affine index subscripts are inside IndexedRef (opaque).
        assert analyzable == 2
        assert total == 5
        assert analyzable_ratio(outer) == pytest.approx(2 / 5)

    def test_empty_loop_counts_as_analyzable(self):
        empty = loop("i", 0, 4, [])
        assert analyzable_ratio(empty) == 1.0
        assert classify_loop(empty) == SOFTWARE

    def test_threshold_boundary(self, arrays):
        _b, a, idx = arrays
        # Exactly half analyzable -> software at the paper's 0.5.
        i = var("i")
        half = loop("i", 0, 4, [
            stmt(reads=[a[i], IndexedRef(a, idx[i])], work=1),
        ])
        assert classify_loop(half, threshold=0.5) == SOFTWARE
        assert classify_loop(half, threshold=0.6) == HARDWARE


class TestRegionDetection:
    def test_uniform_propagation(self, arrays):
        b, a, _idx = arrays
        b.append(loop("t", 0, 2, [affine_loop("i", a), affine_loop("j", a)]))
        program = b.build()
        report = detect_regions(program)
        t_loop = program.top_level_loops()[0]
        assert t_loop.preference == SOFTWARE
        assert report.region_count == 1
        assert report.preferences() == [SOFTWARE]

    def test_mixed_outer_loop(self, arrays):
        b, a, idx = arrays
        b.append(loop("t", 0, 2, [
            affine_loop("i", a),
            irregular_loop("j", a, idx),
        ]))
        program = b.build()
        report = detect_regions(program)
        t_loop = program.top_level_loops()[0]
        assert t_loop.preference == MIXED
        assert report.preferences() == [SOFTWARE, HARDWARE]

    def test_figure2_shape(self, arrays):
        """The paper's Figure 2: three level-2 nests (hw, sw, hw) under a
        level-1 loop; the level-1 loop must come out mixed."""
        b, a, idx = arrays
        nest_hw1 = loop("a", 0, 2, [loop("b", 0, 2, [
            irregular_loop("c", a, idx, 2),
        ])])
        nest_sw = loop("d", 0, 2, [affine_loop("e", a, 2)])
        nest_hw2 = loop("f", 0, 2, [irregular_loop("g", a, idx, 2)])
        b.append(loop("l1", 0, 2, [nest_hw1, nest_sw, nest_hw2]))
        program = b.build()
        report = detect_regions(program)
        assert program.top_level_loops()[0].preference == MIXED
        assert report.preferences() == [HARDWARE, SOFTWARE, HARDWARE]
        # hw preference propagated up the perfect prefix of nest 1
        assert nest_hw1.preference == HARDWARE
        assert nest_hw1.inner_loops[0].preference == HARDWARE

    def test_sandwiched_statements_classified(self, arrays):
        b, a, idx = arrays
        sandwich = stmt(reads=[a[var("t")]], work=1)
        b.append(loop("t", 0, 2, [
            affine_loop("i", a),
            sandwich,
            irregular_loop("j", a, idx),
        ]))
        program = b.build()
        detect_regions(program)
        assert sandwich.preference == SOFTWARE

    def test_idempotent(self, arrays):
        b, a, idx = arrays
        b.append(loop("t", 0, 2, [
            affine_loop("i", a), irregular_loop("j", a, idx),
        ]))
        program = b.build()
        first = detect_regions(program).preferences()
        second = detect_regions(program).preferences()
        assert first == second


class TestMarkerInsertion:
    def _program(self, arrays, children):
        b, _a, _idx = arrays
        b.append(loop("t", 0, 3, children))
        return b.build()

    def test_alternating_regions_get_markers(self, arrays):
        _b, a, idx = arrays
        program = self._program(
            arrays,
            [affine_loop("i", a), irregular_loop("j", a, idx)],
        )
        report = insert_markers(program)
        kinds = [m.kind for m in program.markers()]
        # hw region needs an ON; loop wrap needs the OFF re-established.
        assert "on" in kinds
        assert report.inserted == len(kinds)

    def test_pure_software_program_needs_no_markers(self, arrays):
        _b, a, _idx = arrays
        program = self._program(arrays, [affine_loop("i", a)])
        report = insert_markers(program)
        assert report.inserted == 0
        assert program.markers() == []

    def test_pure_hardware_program_gets_single_on(self, arrays):
        _b, a, idx = arrays
        program = self._program(arrays, [irregular_loop("j", a, idx)])
        report = insert_markers(program)
        assert report.activates == 1
        assert report.deactivates == 0

    def test_redundancy_elimination(self, arrays):
        """Two adjacent hw nests share one ON (Figure 2(c))."""
        _b, a, idx = arrays
        program = self._program(
            arrays,
            [
                irregular_loop("j1", a, idx),
                irregular_loop("j2", a, idx),
                affine_loop("i", a),
            ],
        )
        report = insert_markers(program)
        assert report.naive_markers == 3
        assert report.activates == 1
        assert report.eliminated >= 1

    def test_double_insertion_rejected(self, arrays):
        _b, a, idx = arrays
        program = self._program(arrays, [irregular_loop("j", a, idx)])
        insert_markers(program)
        with pytest.raises(ValueError):
            insert_markers(program)

    def test_runtime_state_consistency(self, arrays):
        """Simulating the marker stream must give every region the right
        hardware state on every loop iteration."""
        _b, a, idx = arrays
        sw = affine_loop("i", a)
        hw = irregular_loop("j", a, idx)
        program = self._program(arrays, [hw, sw])
        insert_markers(program)

        t_loop = program.top_level_loops()[0]
        state = "sw"  # program starts in compiler mode
        for _iteration in range(3):
            for node in t_loop.body:
                if isinstance(node, MarkerStmt):
                    state = "hw" if node.activates else "sw"
                elif node is hw:
                    assert state == "hw"
                elif node is sw:
                    assert state == "sw"

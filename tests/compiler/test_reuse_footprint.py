"""Tests for reuse analysis and footprint estimation."""

import pytest

from repro.compiler.analysis.footprint import (
    nest_footprint_bytes,
    ref_footprint_bytes,
)
from repro.compiler.analysis.reuse import (
    address_stride,
    innermost_cost,
    preferred_fastest_dim,
    rank_innermost_candidates,
    reuse_kind,
)
from repro.compiler.ir.builder import loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.refs import ArrayDecl


@pytest.fixture
def arrays():
    a = ArrayDecl("A", (16, 16))          # row-major
    col = ArrayDecl("B", (16, 16), dim_order=(1, 0))
    return a, col


class TestStride:
    def test_row_major_strides(self, arrays):
        a, _col = arrays
        i, j = var("i"), var("j")
        ref = a[i, j]
        assert address_stride(ref, "j") == 8         # unit stride
        assert address_stride(ref, "i") == 16 * 8    # row stride

    def test_column_major_strides(self, arrays):
        _a, col = arrays
        i, j = var("i"), var("j")
        ref = col[i, j]
        assert address_stride(ref, "i") == 8
        assert address_stride(ref, "j") == 16 * 8

    def test_coefficient_scales_stride(self, arrays):
        a, _col = arrays
        i, j = var("i"), var("j")
        assert address_stride(a[i, 2 * j], "j") == 16

    def test_invariant_reference(self, arrays):
        a, _ = arrays
        j = var("j")
        assert address_stride(a[j, j], "i") == 0


class TestReuseKind:
    def test_temporal(self, arrays):
        a, _ = arrays
        assert reuse_kind(a[var("j"), var("j")], "i", 32) == "temporal"

    def test_spatial(self, arrays):
        a, _ = arrays
        assert reuse_kind(a[var("i"), var("j")], "j", 32) == "spatial"

    def test_none(self, arrays):
        a, _ = arrays
        assert reuse_kind(a[var("i"), var("j")], "i", 32) == "none"


class TestCostRanking:
    def test_temporal_loop_ranks_best(self, arrays):
        a, _ = arrays
        i, j = var("i"), var("j")
        # U[j]-style: invariant in i, spatial in j for the other ref.
        u = ArrayDecl("U", (16,))
        statements = [stmt(reads=[u[j], a[i, j]], work=1)]
        nest = loop("i", 0, 16, [loop("j", 0, 16, statements)])
        ranking = rank_innermost_candidates(
            nest.perfect_nest_loops(), statements, line_size=32
        )
        best_cost, best_var = ranking[0]
        # j has spatial for both refs; i has temporal for u but a full
        # line per iteration for a -> j should win here.
        assert best_var == "j"

    def test_innermost_cost_accounts_non_affine(self):
        from repro.compiler.ir.refs import PointerChaseRef
        import numpy as np
        heap = ArrayDecl(
            "H", (8,), element_size=32, data=np.arange(8)
        )
        statements = [stmt(reads=[PointerChaseRef(heap, "w")], work=1)]
        cost = innermost_cost(statements, "i", trip=10, line_size=32)
        assert cost == pytest.approx(10.0)


class TestPreferredDim:
    def test_unit_dim_selected(self, arrays):
        a, _ = arrays
        i, j = var("i"), var("j")
        assert preferred_fastest_dim(a[j, i], "i") == 1
        assert preferred_fastest_dim(a[i, j], "i") == 0

    def test_smallest_coefficient_wins(self, arrays):
        a, _ = arrays
        i = var("i")
        assert preferred_fastest_dim(a[2 * i, i], "i") == 1

    def test_invariant_gives_none(self, arrays):
        a, _ = arrays
        j = var("j")
        assert preferred_fastest_dim(a[j, j], "i") is None


class TestFootprint:
    def test_single_ref_footprint(self):
        a = ArrayDecl("A", (32, 32))
        i, j = var("i"), var("j")
        fp = ref_footprint_bytes(a[i, j], {"i": 8, "j": 16})
        assert fp == 8 * 16 * 8

    def test_footprint_clamped_by_extent(self):
        a = ArrayDecl("A", (4, 4))
        i, j = var("i"), var("j")
        fp = ref_footprint_bytes(a[i, j], {"i": 100, "j": 100})
        assert fp == 4 * 4 * 8

    def test_nest_footprint_merges_taps(self):
        """Stencil taps of one array largely overlap: take the max
        per array, not the sum."""
        a = ArrayDecl("A", (64, 64))
        i, j = var("i"), var("j")
        statements = [
            stmt(reads=[a[i, j], a[i + 1, j], a[i, j + 1]], work=1),
        ]
        nest = loop("i", 0, 32, [loop("j", 0, 32, statements)])
        fp = nest_footprint_bytes(nest.perfect_nest_loops(), statements)
        assert fp == 32 * 32 * 8  # one array's worth, not three

    def test_multiple_arrays_sum(self):
        a = ArrayDecl("A", (64, 64))
        b = ArrayDecl("B", (64, 64))
        i, j = var("i"), var("j")
        statements = [stmt(reads=[a[i, j], b[j, i]], work=1)]
        nest = loop("i", 0, 16, [loop("j", 0, 16, statements)])
        fp = nest_footprint_bytes(nest.perfect_nest_loops(), statements)
        assert fp == 2 * 16 * 16 * 8

"""Suite-level validation: analytic gating vs the simulator's policy.

The headline acceptance bar for the analytic subsystem: rebuild each
benchmark's selective program, score its regions with the closed-form
model, and compare the resulting ON/OFF policy against the one derived
from the simulated trace.  Agreement is judged per compiler gate class
(see :func:`repro.analytic.gating.gating_agreement`) and must hold on
at least 12 of the 13 paper benchmarks at TINY scale.
"""

import pytest

from repro.analytic.gating import analytic_gating, gating_agreement
from repro.core.versions import prepare_codes
from repro.hwopt.policy import recommend_gating
from repro.params import base_config
from repro.workloads.base import TINY
from repro.workloads.registry import all_specs


@pytest.fixture(scope="module")
def verdicts():
    machine = base_config().scaled(TINY.machine_divisor)
    results = {}
    for spec in all_specs():
        codes = prepare_codes(spec, TINY, machine)
        simulated = recommend_gating(codes.selective_trace, machine)
        analytic = analytic_gating(spec, TINY, machine)
        results[spec.name] = (analytic, simulated)
    return results


class TestSuiteAgreement:
    def test_agreement_on_at_least_12_of_13(self, verdicts):
        agreements = {
            name: gating_agreement(analytic, simulated)
            for name, (analytic, simulated) in verdicts.items()
        }
        disagreeing = sorted(
            name for name, agree in agreements.items() if not agree
        )
        assert len(agreements) == 13
        assert len(disagreeing) <= 1, (
            f"analytic gating disagrees with the simulator on "
            f"{disagreeing}"
        )

    def test_thresholds_respect_the_floor(self, verdicts):
        for analytic, _ in verdicts.values():
            assert analytic.threshold >= 0.2

    def test_every_benchmark_has_scored_regions(self, verdicts):
        for name, (analytic, _) in verdicts.items():
            assert analytic.recommendations, name
            assert analytic.trace_name.endswith("/analytic")
            for rec in analytic.recommendations:
                assert rec.memory_refs > 0
                assert 0.0 <= rec.miss_ratio <= 1.0

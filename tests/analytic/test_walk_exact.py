"""Property tests: the exact IR walker is bit-identical to tracing.

The walker (:mod:`repro.analytic.walk`) claims trace-equivalence with
``TraceGenerator`` + ``distance_histogram`` / ``split_profiles``.
These properties generate random affine nests with concrete bounds
(mixed depths, shared and private arrays, subscript offsets, scalars,
markers) and require the histograms and region profiles to match
*exactly* — counts, cold misses, region starts, and gate flags.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.walk import walk_histogram, walk_profile
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.ir.stmts import MarkerStmt
from repro.locality.mrc import distance_histogram
from repro.locality.profile import split_profiles
from repro.tracegen.interpreter import TraceGenerator

LINE = 32


@st.composite
def affine_programs(draw):
    """A random program of 1-2 affine nests with concrete bounds."""
    b = ProgramBuilder("prop")
    arrays = [b.array(name, (16, 16)) for name in ("A", "B")]
    body = []
    nests = draw(st.integers(1, 2))
    for nest_index in range(nests):
        depth = draw(st.integers(1, 3))
        names = [f"n{nest_index}v{level}" for level in range(depth)]
        vars_ = [var(name) for name in names]

        def reference():
            array = draw(st.sampled_from(arrays))
            subscripts = []
            for _ in range(2):
                v = draw(st.sampled_from(vars_))
                c = draw(st.integers(0, 2))
                subscripts.append(v + c)
            return array[subscripts[0], subscripts[1]]

        reads = [reference() for _ in range(draw(st.integers(1, 3)))]
        writes = (
            [reference()] if draw(st.booleans()) else []
        )
        statements = [stmt(reads=reads, writes=writes, work=1)]
        if draw(st.booleans()):
            statements.append(
                stmt(reads=[reference()], work=draw(st.integers(0, 2)))
            )
        nest = statements
        for name in reversed(names):
            nest = [loop(name, 0, draw(st.integers(2, 5)), nest)]
        if draw(st.booleans()):
            body.append(MarkerStmt(draw(st.sampled_from(["on", "off"]))))
        body.extend(nest)
    for node in body:
        b.append(node)
    return b.build()


class TestWalkMatchesTrace:
    @given(affine_programs())
    @settings(max_examples=40, deadline=None)
    def test_histogram_bit_identical(self, program):
        trace = TraceGenerator(program).generate_packed()
        expected = distance_histogram(trace, line_size=LINE)
        actual = walk_histogram(program, line_size=LINE)
        assert actual == expected
        assert actual.cold == expected.cold
        assert dict(actual.counts) == dict(expected.counts)

    @given(affine_programs(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_profile_bit_identical(self, program, initially_on):
        trace = TraceGenerator(program).generate_packed()
        expected = split_profiles(
            trace, line_size=LINE, initially_on=initially_on
        )
        actual = walk_profile(
            program, line_size=LINE, initially_on=initially_on
        )
        assert len(actual.regions) == len(expected.regions)
        for ours, theirs in zip(actual.regions, expected.regions):
            assert ours.index == theirs.index
            assert ours.gate_on == theirs.gate_on
            assert ours.start == theirs.start
            assert ours.histogram == theirs.histogram
        assert (
            actual.total_histogram() == expected.total_histogram()
        )

"""The closed-form locality model: structure and agreement properties.

Two kinds of checks.  *Properties*: every predicted miss-ratio curve
must be monotone non-increasing in cache size (more capacity never
hurts a stack algorithm), over randomly generated affine nests.
*Agreement*: on nests whose locality has a pencil-and-paper answer
(streams, repeated scans, column extraction, tiled matmul) the model
must land on — or within a tight tolerance of — the exact walker.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.model import LocalityModel, predict_nest_histogram
from repro.analytic.walk import walk_histogram
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.transforms.tiling import apply_tiling

from .test_walk_exact import affine_programs

LINE = 32


def matmul(n=24):
    b = ProgramBuilder("mm")
    c = b.array("C", (n, n))
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    i, j, k = var("i"), var("j"), var("k")
    b.append(
        loop("i", 0, n, [
            loop("j", 0, n, [
                loop("k", 0, n, [
                    stmt(
                        writes=[c[i, j]],
                        reads=[c[i, j], a[i, k], bb[k, j]],
                        work=2,
                    ),
                ]),
            ]),
        ])
    )
    return b.build()


class TestMonotone:
    @given(affine_programs())
    @settings(max_examples=30, deadline=None)
    def test_predicted_mrc_monotone_nonincreasing(self, program):
        curve = LocalityModel(program, LINE).curve()
        sizes = sorted(curve.sizes())
        ratios = [curve.miss_ratio(size) for size in sizes]
        for smaller, larger in zip(ratios, ratios[1:]):
            assert larger <= smaller + 1e-12

    @given(affine_programs(), st.integers(1, 512))
    @settings(max_examples=30, deadline=None)
    def test_ratio_is_a_ratio(self, program, cache_lines):
        ratio = LocalityModel(program, LINE).miss_ratio(cache_lines)
        assert 0.0 <= ratio <= 1.0


class TestExactOnCanonicalNests:
    def test_streaming_scan_is_all_cold(self):
        b = ProgramBuilder("scan")
        a = b.array("A", (1024,))
        i = var("i")
        b.append(loop("i", 0, 1024, [stmt(reads=[a[i]], work=1)]))
        program = b.build()
        predicted = LocalityModel(program, LINE).total_histogram()
        assert predicted == walk_histogram(program, LINE)

    def test_repeated_scan_reuses_at_footprint(self):
        b = ProgramBuilder("rescan")
        a = b.array("A", (256,))
        t, i = var("t"), var("i")
        b.append(
            loop("t", 0, 4, [
                loop("i", 0, 256, [stmt(reads=[a[i]], work=1)]),
            ])
        )
        program = b.build()
        model = LocalityModel(program, LINE)
        exact = walk_histogram(program, LINE)
        # 64 lines of footprint: hits iff the cache holds the array.
        assert model.miss_ratio(64) == exact.curve().miss_ratio(64)
        assert model.miss_ratio(32) == exact.curve().miss_ratio(32)

    def test_column_extraction_not_merged_across_offsets(self):
        # Three columns of a wide row-major table: same deltas, offsets
        # hundreds of bytes apart — these are separate line streams and
        # grouping them as copies would underpredict threefold.
        rows = 256
        b = ProgramBuilder("cols")
        table = b.array("T", (rows, 16))
        r = var("r")
        b.append(
            loop("r", 0, rows, [
                stmt(
                    reads=[table[r, 0], table[r, 5], table[r, 10]],
                    work=1,
                ),
            ])
        )
        program = b.build()
        model = LocalityModel(program, LINE)
        exact = walk_histogram(program, LINE)
        assert model.miss_ratio(128) == exact.curve().miss_ratio(128)

    def test_adjacent_offsets_do_share_lines(self):
        # a[i] and a[i+1] overlap within a line: close to one stream's
        # misses, nothing near double.
        b = ProgramBuilder("pair")
        a = b.array("A", (1024,))
        i = var("i")
        b.append(
            loop("i", 0, 1023, [
                stmt(reads=[a[i], a[i + 1]], work=1),
            ])
        )
        program = b.build()
        predicted = LocalityModel(program, LINE).total_histogram()
        exact = walk_histogram(program, LINE)
        assert predicted.curve().misses(128) <= 1.1 * exact.curve().misses(
            128
        )

    def test_translated_copy_reuses_across_iterations(self):
        # a[i-1] re-touches a[i]'s line one iteration later: the model
        # must not bill it as a second cold stream.
        b = ProgramBuilder("stencil")
        a = b.array("A", (2048,))
        i = var("i")
        b.append(
            loop("i", 1, 2048, [
                stmt(reads=[a[i], a[i - 1]], work=1),
            ])
        )
        program = b.build()
        model = LocalityModel(program, LINE)
        exact = walk_histogram(program, LINE)
        assert model.miss_ratio(128) == exact.curve().miss_ratio(128)


class TestTiledNests:
    def test_tiled_matmul_tracks_exact_walk(self):
        # Strip-mined controllers never appear in subscripts; their
        # strides flow through the window anchoring.  Without it the
        # model sees free temporal reuse across tiles and every tiled
        # prediction collapses toward zero.
        for tile in (4, 8):
            program = matmul(40)
            result = apply_tiling(
                program.top_level_loops()[0], 4096, tile_size=tile
            )
            assert result.applied
            predicted = LocalityModel(program, LINE).miss_ratio(128)
            exact = walk_histogram(program, LINE).curve().miss_ratio(128)
            assert abs(predicted - exact) < 0.005

    def test_tiling_ordering_matches_reality(self):
        # The model's whole job in the tile search: rank candidate
        # edges the same way the exact walk does.
        def ratio(tile, exact_walk):
            program = matmul(40)
            apply_tiling(
                program.top_level_loops()[0], 4096, tile_size=tile
            )
            if exact_walk:
                return walk_histogram(program, LINE).curve().miss_ratio(128)
            head = program.top_level_loops()[0]
            return predict_nest_histogram(head, LINE).curve().miss_ratio(
                128
            )

        predicted = [ratio(tile, False) for tile in (4, 8, 16)]
        exact = [ratio(tile, True) for tile in (4, 8, 16)]
        assert sorted(range(3), key=predicted.__getitem__) == sorted(
            range(3), key=exact.__getitem__
        )

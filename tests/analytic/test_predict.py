"""The prediction entry points: payload, CLI, service, and policy knob.

``predict_benchmark`` is the one-call JSON packaging of the analytic
subsystem; ``repro predict`` and ``POST /v1/predict`` are thin shells
around it.  The miss-floor policy parameter rides the same interfaces,
so its validation and threading are covered here too.
"""

import json

import pytest

from repro.analytic.predict import predict_benchmark
from repro.cli import main
from repro.hwopt.policy import DEFAULT_MISS_FLOOR, compare_policies
from repro.locality.profile import LocalityProfile, RegionProfile
from repro.workloads.base import TINY


@pytest.fixture(scope="module")
def payload():
    return predict_benchmark("tpcd_q1", TINY)


class TestPredictBenchmark:
    def test_payload_shape(self, payload):
        assert payload["benchmark"] == "tpcd_q1"
        assert payload["scale"] == "tiny"
        assert payload["cache_lines"] == 128
        assert payload["miss_floor"] == DEFAULT_MISS_FLOOR
        assert payload["memory_refs"] > 0
        assert 0.0 <= payload["miss_ratio"] <= 1.0
        assert payload["regions"]
        for region in payload["regions"]:
            assert set(region) == {
                "index", "compiler_on", "model_on",
                "miss_ratio", "memory_refs",
            }
        assert payload["elapsed_ms"] > 0
        json.dumps(payload)  # JSON-clean end to end

    def test_mrc_is_sampled_and_monotone(self, payload):
        points = payload["mrc"]
        sizes = [size for size, _ in points]
        ratios = [ratio for _, ratio in points]
        assert sizes == sorted(sizes)
        assert payload["cache_lines"] in sizes
        for earlier, later in zip(ratios, ratios[1:]):
            assert later <= earlier + 1e-12
        # The curve bottoms out: the top sample holds every distance.
        assert ratios[-1] <= ratios[0]

    def test_unknown_benchmark_raises_key_error(self):
        with pytest.raises(KeyError):
            predict_benchmark("nosuch", TINY)

    def test_bad_miss_floor_rejected(self):
        with pytest.raises(ValueError):
            predict_benchmark("perl", TINY, miss_floor=1.5)

    def test_floor_one_gates_everything_off(self):
        strict = predict_benchmark("perl", TINY, miss_floor=1.0)
        assert strict["model_on_regions"] == 0


class TestPolicyMissFloor:
    def _profile(self, miss_ratio_region):
        region = RegionProfile(0, True, 0)
        # 10 refs at distance 1000 (misses at 128) per miss unit.
        misses = int(miss_ratio_region * 100)
        for _ in range(misses):
            region.histogram.record(1000)
        for _ in range(100 - misses):
            region.histogram.record(0)
        return LocalityProfile("synthetic", 32, [region])

    def test_floor_masks_low_miss_regions(self):
        profile = self._profile(0.15)
        default = compare_policies(profile, 128)
        assert not default.recommendations[0].model_on
        lenient = compare_policies(profile, 128, miss_floor=0.1)
        assert lenient.recommendations[0].model_on

    def test_floor_validation(self):
        profile = self._profile(0.5)
        with pytest.raises(ValueError):
            compare_policies(profile, 128, miss_floor=-0.1)
        with pytest.raises(ValueError):
            compare_policies(profile, 128, miss_floor=1.01)

    def test_explicit_threshold_ignores_floor(self):
        profile = self._profile(0.15)
        comparison = compare_policies(
            profile, 128, threshold=0.05, miss_floor=0.9
        )
        assert comparison.threshold == 0.05
        assert comparison.recommendations[0].model_on


class TestPredictCLI:
    def test_single_benchmark_emits_object(self, capsys):
        assert main(["--scale", "tiny", "predict", "tpcd_q1"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["benchmark"] == "tpcd_q1"
        assert document["tilings"] is not None

    def test_multiple_benchmarks_emit_array(self, capsys):
        assert main(
            ["--scale", "tiny", "predict", "perl", "swim"]
        ) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [d["benchmark"] for d in documents] == ["perl", "swim"]

    def test_miss_floor_flag_threads_through(self, capsys):
        assert main(
            [
                "--scale", "tiny", "predict", "perl",
                "--miss-floor", "1.0",
            ]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["miss_floor"] == 1.0
        assert document["model_on_regions"] == 0

    def test_unknown_benchmark_exits_2(self, capsys):
        assert main(["--scale", "tiny", "predict", "nosuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestLocalityCLI:
    def test_json_output_is_parseable(self, capsys):
        assert main(
            ["--scale", "tiny", "locality", "tpcd_q1", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["benchmark"] == "tpcd_q1"
        assert rows[0]["memory_refs"] > 0

    def test_miss_floor_changes_the_policy(self, capsys):
        assert main(
            [
                "--scale", "tiny", "locality", "tpcd_q1", "--json",
                "--miss-floor", "0.99",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["model_on_regions"] == 0

    def test_bad_miss_floor_exits_2(self, capsys):
        assert main(
            [
                "--scale", "tiny", "locality", "tpcd_q1",
                "--miss-floor", "2.0",
            ]
        ) == 2
        assert "miss_floor" in capsys.readouterr().err

"""Model-driven tile-size search: legality and the never-worse bar.

The search must never pick a tile that simulates worse than the plain
capacity heuristic's choice (the acceptance criterion backing
``LocalityOptimizer(model_tiles=True)``), and on geometries where the
model sees a real difference it should do strictly better.  No suite
benchmark currently tiles (trips too small or no outer-carried reuse),
so these nests are synthetic — matmul and a Jacobi-style stencil —
plus a check that the optimizer's suite behavior is unchanged.
"""

import pytest

from repro.analytic.tiles import choose_tile_size, model_tiling
from repro.analytic.walk import walk_histogram
from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import var
from repro.compiler.optimizer import LocalityOptimizer
from repro.compiler.regions.markers import insert_markers
from repro.compiler.transforms.tiling import apply_tiling
from repro.params import base_config
from repro.workloads.base import TINY
from repro.workloads.registry import all_specs

LINE = 32


def matmul(n):
    b = ProgramBuilder("mm")
    c = b.array("C", (n, n))
    a = b.array("A", (n, n))
    bb = b.array("B", (n, n))
    i, j, k = var("i"), var("j"), var("k")
    b.append(
        loop("i", 0, n, [
            loop("j", 0, n, [
                loop("k", 0, n, [
                    stmt(
                        writes=[c[i, j]],
                        reads=[c[i, j], a[i, k], bb[k, j]],
                        work=2,
                    ),
                ]),
            ]),
        ])
    )
    return b.build()


def jacobi(n):
    b = ProgramBuilder("jac")
    a = b.array("A", (n, n))
    out = b.array("OUT", (n, n))
    i, j = var("i"), var("j")
    b.append(
        loop("t", 0, 6, [
            loop("i", 1, n - 1, [
                loop("j", 1, n - 1, [
                    stmt(
                        writes=[out[i, j]],
                        reads=[
                            a[i, j],
                            a[i - 1, j],
                            a[i + 1, j],
                            a[i, j - 1],
                            a[i, j + 1],
                        ],
                        work=4,
                    ),
                ]),
            ]),
        ])
    )
    return b.build()


CELLS = [
    (matmul, 32, 1024),
    (matmul, 32, 4096),
    (matmul, 40, 2048),
    (jacobi, 64, 2048),
    (jacobi, 64, 4096),
]


class TestNeverWorse:
    @pytest.mark.parametrize("build,n,l1_bytes", CELLS)
    def test_model_choice_never_worse_than_default(
        self, build, n, l1_bytes
    ):
        baseline = build(n)
        apply_tiling(baseline.top_level_loops()[0], l1_bytes)
        chosen = build(n)
        model = model_tiling(
            chosen.top_level_loops()[0], l1_bytes, LINE
        )
        # The heuristic default may refuse (its tile can exceed a trip
        # count); the baseline is then simply the untiled nest, and the
        # never-worse bar still applies.
        assert model.applied
        lines = l1_bytes // LINE
        default_ratio = walk_histogram(baseline, LINE).curve().miss_ratio(
            lines
        )
        model_ratio = walk_histogram(chosen, LINE).curve().miss_ratio(
            lines
        )
        assert model_ratio <= default_ratio + 1e-12

    def test_search_improves_where_the_model_sees_a_gap(self):
        # matmul at a 4 KB L1: the heuristic's tile-8 working-set
        # argument leaves half the capacity idle; the model finds 16.
        improved = 0
        for build, n, l1_bytes in CELLS:
            baseline = build(n)
            apply_tiling(baseline.top_level_loops()[0], l1_bytes)
            chosen = build(n)
            model_tiling(chosen.top_level_loops()[0], l1_bytes, LINE)
            lines = l1_bytes // LINE
            default_ratio = walk_histogram(
                baseline, LINE
            ).curve().miss_ratio(lines)
            model_ratio = walk_histogram(chosen, LINE).curve().miss_ratio(
                lines
            )
            improved += model_ratio < default_ratio - 1e-12
        assert improved >= 2


class TestSearchMechanics:
    def test_search_reports_scores_and_anchors_on_default(self):
        search = choose_tile_size(
            matmul(32).top_level_loops()[0], 4096, LINE
        )
        assert search is not None
        tiles = [tile for tile, _ in search.scores]
        assert search.default in tiles
        assert search.chosen in tiles
        by_tile = dict(search.scores)
        assert by_tile[search.chosen] <= by_tile[search.default]

    def test_untileable_nest_falls_back_to_plain_result(self):
        b = ProgramBuilder("flat")
        a = b.array("A", (64,))
        i = var("i")
        b.append(loop("i", 0, 64, [stmt(reads=[a[i]], work=1)]))
        program = b.build()
        head = program.top_level_loops()[0]
        assert choose_tile_size(head, 4096, LINE) is None
        result = model_tiling(head, 4096, LINE)
        plain = apply_tiling(program.top_level_loops()[0], 4096)
        assert not result.applied
        assert result.reason == plain.reason

    def test_tile_size_override_validation(self):
        with pytest.raises(ValueError):
            apply_tiling(matmul(32).top_level_loops()[0], 4096, tile_size=1)


class TestOptimizerIntegration:
    def test_model_tiles_matches_plain_on_untiled_suite(self):
        # No suite benchmark tiles at TINY (small trips / no reuse),
        # so the model-driven optimizer must reproduce the plain one's
        # tiling results exactly.
        machine = base_config().scaled(TINY.machine_divisor)
        for spec in all_specs():
            plain_program = spec.instantiate(TINY)
            insert_markers(plain_program)
            plain = LocalityOptimizer(
                machine, model_tiles=False
            ).optimize(plain_program)
            model_program = spec.instantiate(TINY)
            insert_markers(model_program)
            modeled = LocalityOptimizer(machine).optimize(model_program)
            assert [t.applied for t in modeled.tilings] == [
                t.applied for t in plain.tilings
            ], spec.name
            assert [t.reason for t in modeled.tilings] == [
                t.reason for t in plain.tilings
            ], spec.name

    def test_model_tiles_applies_search_choice_on_tileable_nest(self):
        program = matmul(40)
        head = program.top_level_loops()[0]
        search = choose_tile_size(head, 4096, LINE)
        result = model_tiling(head, 4096, LINE)
        assert result.applied
        assert result.tile_size == search.chosen

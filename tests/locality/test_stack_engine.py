"""Unit tests for the Fenwick-indexed Mattson LRU stack."""

import random
from collections import OrderedDict

import pytest

from repro.locality.stack import COLD, ReuseStackEngine


def reference_distances(lines):
    """O(N·M) OrderedDict stack — the pre-engine ground truth."""
    stack: OrderedDict[int, None] = OrderedDict()
    out = []
    for line in lines:
        if line in stack:
            distance = 0
            for key in reversed(stack):
                if key == line:
                    break
                distance += 1
            out.append(distance)
            stack.move_to_end(line)
        else:
            out.append(COLD)
            stack[line] = None
    return out


class TestReuseStackEngine:
    def test_cold_then_immediate_reuse(self):
        engine = ReuseStackEngine()
        assert engine.access(7) == COLD
        assert engine.access(7) == 0
        assert engine.access(7) == 0
        assert engine.live_lines == 1

    def test_interleaved_distances(self):
        engine = ReuseStackEngine()
        for line in (1, 2, 3):
            assert engine.access(line) == COLD
        # Stack (top..bottom): 3, 2, 1.
        assert engine.access(1) == 2
        assert engine.access(3) == 1
        assert engine.access(3) == 0

    def test_depth_is_non_destructive(self):
        engine = ReuseStackEngine()
        engine.access(1)
        engine.access(2)
        assert engine.depth(1) == 1
        assert engine.depth(1) == 1  # unchanged by the probe
        assert engine.depth(99) == COLD
        assert engine.access(1) == 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_on_random_streams(self, seed):
        rng = random.Random(seed)
        lines = [rng.randrange(200) for _ in range(3000)]
        engine = ReuseStackEngine()
        assert [engine.access(x) for x in lines] == reference_distances(
            lines
        )

    def test_compaction_preserves_distances(self):
        """Streams far longer than the initial timeline stay exact."""
        rng = random.Random(42)
        # > 8 compactions of a 1024-slot timeline, skewed reuse.
        lines = [int(rng.paretovariate(1.1)) % 500 for _ in range(10000)]
        engine = ReuseStackEngine()
        assert [engine.access(x) for x in lines] == reference_distances(
            lines
        )
        assert engine.live_lines == len(set(lines))

    def test_scan_resistance(self):
        """A long one-touch scan then a reuse at full stack depth."""
        engine = ReuseStackEngine()
        for line in range(5000):
            assert engine.access(line) == COLD
        assert engine.access(0) == 4999
        assert engine.access(4999) == 1

"""The correctness anchor: MRC predictions vs direct LRU simulation.

By Mattson's stack-inclusion property, one distance histogram predicts
the miss count of a fully-associative LRU cache of *every* capacity.
These tests sweep real benchmark traces against
:class:`repro.memory.cache.SetAssociativeCache` configured fully
associative and require bit-exact agreement — no tolerance.  They also
pin the packed columnar path to the object path.
"""

import pytest

from repro.isa.instructions import Opcode
from repro.isa.packed import PackedTrace
from repro.locality.mrc import distance_histogram
from repro.memory.cache import SetAssociativeCache
from repro.params import CacheParams
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec

LINE_SIZE = 32
#: Capacities (in lines) swept against the simulator.
SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

BENCHMARKS = ("vpenta", "compress", "tpcd_q3")


def simulated_misses(trace, cache_lines: int) -> int:
    """Drive a fully-associative LRU cache over the trace's memory refs."""
    cache = SetAssociativeCache(
        CacheParams(
            name="FA",
            size=cache_lines * LINE_SIZE,
            assoc=cache_lines,
            block_size=LINE_SIZE,
            latency=1,
        )
    )
    for inst in trace:
        if inst.op is Opcode.LOAD or inst.op is Opcode.STORE:
            is_write = inst.op is Opcode.STORE
            if not cache.lookup(inst.arg, is_write):
                cache.fill(inst.arg, dirty=is_write)
    return cache.stats.misses


@pytest.fixture(scope="module", params=BENCHMARKS)
def packed_trace(request):
    program = get_spec(request.param).instantiate(TINY)
    return TraceGenerator(program, trace_name=request.param).generate_packed()


class TestMRCMatchesSimulator:
    def test_exact_agreement_across_sizes(self, packed_trace):
        curve = distance_histogram(packed_trace, line_size=LINE_SIZE).curve()
        for cache_lines in SIZES:
            predicted = curve.misses(cache_lines)
            simulated = simulated_misses(packed_trace, cache_lines)
            assert predicted == simulated, (
                f"{packed_trace.name}: MRC predicts {predicted} misses at "
                f"{cache_lines} lines, simulator measured {simulated}"
            )

    def test_total_and_monotonicity(self, packed_trace):
        histogram = distance_histogram(packed_trace, line_size=LINE_SIZE)
        assert histogram.total == packed_trace.memory_reference_count
        curve = histogram.curve()
        # Monotone non-increasing misses, floored at the cold count.
        previous = curve.misses(1)
        for cache_lines in SIZES[1:]:
            current = curve.misses(cache_lines)
            assert current <= previous
            previous = current
        beyond = curve.misses(histogram.max_distance + 1)
        assert beyond == histogram.cold

    def test_curve_step_points_cover_range(self, packed_trace):
        curve = distance_histogram(packed_trace, line_size=LINE_SIZE).curve()
        points = curve.as_points()
        assert points[0][0] == 1
        ratios = [ratio for _, ratio in points]
        assert ratios == sorted(ratios, reverse=True)


class TestPackedObjectEquivalence:
    def test_identical_histograms_and_curves(self, packed_trace):
        object_trace = packed_trace.to_trace()
        packed = distance_histogram(packed_trace, line_size=LINE_SIZE)
        objects = distance_histogram(object_trace, line_size=LINE_SIZE)
        assert packed == objects
        for cache_lines in SIZES:
            assert packed.curve().misses(cache_lines) == objects.curve().misses(
                cache_lines
            )


class TestSelectiveTraceAgreement:
    def test_marked_trace_matches_simulator(self):
        """Markers must not perturb the distance stream."""
        from repro.core.versions import prepare_codes
        from repro.params import base_config

        machine = base_config().scaled(TINY.machine_divisor)
        codes = prepare_codes(get_spec("tpcd_q3"), TINY, machine)
        trace = codes.selective_trace
        assert isinstance(trace, PackedTrace)
        histogram = trace.opcode_histogram()
        assert histogram[Opcode.HW_ON] > 0  # the trace really is marked
        curve = distance_histogram(trace, line_size=LINE_SIZE).curve()
        for cache_lines in (4, 32, 256):
            assert curve.misses(cache_lines) == simulated_misses(
                trace, cache_lines
            )

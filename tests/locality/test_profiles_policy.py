"""Per-region profiles, the model-driven gating policy, and its harness."""

import pytest

from repro.cli import main
from repro.core.versions import prepare_codes
from repro.evaluation.locality import locality_row, locality_rows
from repro.evaluation.report import render_locality
from repro.hwopt.policy import compare_policies, recommend_gating
from repro.isa.trace import TraceBuilder
from repro.locality.mrc import distance_histogram
from repro.locality.profile import split_profiles
from repro.params import base_config
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


def marked_trace():
    """OFF: tight reuse on lines 0-3; ON: a one-touch scan; OFF again."""
    tb = TraceBuilder("marked")
    for _ in range(40):
        for line in range(4):
            tb.load(line * 32)
    tb.hw_on()
    for i in range(100):
        tb.load(0x10000 + i * 32)
    tb.hw_off()
    for _ in range(40):
        for line in range(4):
            tb.store(line * 32)
    return tb.build_packed()


class TestSplitProfiles:
    def test_region_structure(self):
        profile = split_profiles(marked_trace())
        assert [r.gate_on for r in profile.regions] == [False, True, False]
        assert [r.memory_refs for r in profile.regions] == [160, 100, 160]
        assert profile.regions[1].histogram.cold == 100

    def test_cross_region_reuse_uses_global_stack(self):
        # The final OFF region re-touches lines 0-3 after the 100-line
        # scan: its first reuses happen at distance >= 100, not cold.
        profile = split_profiles(marked_trace())
        last = profile.regions[2].histogram
        assert last.cold == 0
        assert last.max_distance >= 100

    def test_total_equals_unsegmented_histogram(self):
        trace = marked_trace()
        assert split_profiles(trace).total_histogram() == distance_histogram(
            trace
        )

    def test_object_and_packed_paths_agree(self):
        trace = marked_trace()
        packed = split_profiles(trace)
        objects = split_profiles(trace.to_trace())
        assert len(packed.regions) == len(objects.regions)
        for a, b in zip(packed.regions, objects.regions):
            assert (a.gate_on, a.start, a.histogram) == (
                b.gate_on,
                b.start,
                b.histogram,
            )

    def test_unmarked_trace_is_one_region(self):
        tb = TraceBuilder("flat")
        for i in range(50):
            tb.load(i * 32)
        profile = split_profiles(tb.build_packed(), initially_on=True)
        assert len(profile.regions) == 1
        assert profile.regions[0].gate_on is True
        assert profile.state_histogram(True).total == 50
        assert profile.state_histogram(False).total == 0


class TestGatingPolicy:
    def test_model_agrees_on_clear_cut_regions(self):
        # 4-line reuse loops hit easily at 8 lines; the scan never does.
        profile = split_profiles(marked_trace())
        comparison = compare_policies(profile, cache_lines=8)
        assert comparison.regions == 3
        assert [r.model_on for r in comparison.recommendations] == [
            False,
            True,
            False,
        ]
        assert comparison.region_agreement == 1.0
        assert comparison.ref_agreement == 1.0

    def test_explicit_threshold_overrides_adaptive(self):
        profile = split_profiles(marked_trace())
        everything_on = compare_policies(
            profile, cache_lines=8, threshold=0.0
        )
        assert everything_on.model_on_regions == everything_on.regions

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            compare_policies(split_profiles(marked_trace()), cache_lines=0)

    def test_real_selective_trace(self):
        machine = base_config().scaled(TINY.machine_divisor)
        codes = prepare_codes(get_spec("tpcd_q3"), TINY, machine)
        comparison = recommend_gating(codes.selective_trace, machine)
        assert comparison.cache_lines == machine.l1d.num_blocks
        assert comparison.regions >= 2
        assert comparison.compiler_on_regions >= 1
        assert 0.0 <= comparison.region_agreement <= 1.0
        assert 0.0 <= comparison.ref_agreement <= 1.0
        assert 0.0 <= comparison.threshold <= 1.0


class TestEvaluationHarness:
    def test_locality_row_contents(self):
        machine = base_config().scaled(TINY.machine_divisor)
        row = locality_row(get_spec("vpenta"), TINY, machine)
        assert row.benchmark == "vpenta"
        assert row.category == "regular"
        assert row.memory_refs > 1000
        assert row.distinct_lines > 0
        assert 0.0 <= row.selective_miss_ratio <= row.base_miss_ratio <= 1.0
        assert row.regions >= 1
        assert 0.0 <= row.region_agreement <= 100.0

    def test_rows_identical_for_any_job_count(self):
        names = ["vpenta", "compress"]
        serial = locality_rows(TINY, names, jobs=1)
        parallel = locality_rows(TINY, names, jobs=2)
        assert serial == parallel

    def test_render_locality(self):
        rows = locality_rows(TINY, ["tpcd_q3"], jobs=1)
        text = render_locality(rows)
        assert "tpcd_q3" in text
        assert "Agree %" in text


class TestCLI:
    def test_locality_subcommand(self, capsys):
        assert main(["--scale", "tiny", "--jobs", "1",
                     "locality", "vpenta", "compress"]) == 0
        out = capsys.readouterr().out
        assert "vpenta" in out and "compress" in out
        assert "Benchmark" in out

    def test_locality_unknown_benchmark(self, capsys):
        assert main(["--scale", "tiny", "locality", "nonesuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err

"""The packed hot loop must be bit-identical to the object reference loop.

``CPUSimulator.run`` keeps two implementations: the original
per-instruction reference loop and the columnar fast path.  These tests
run both on real benchmark traces — every code version, with and
without hardware mechanisms — and assert the *entire*
:class:`SimulationResult` (cycles, instruction counts, memory
snapshot) matches.  Any timing-model change must keep them in lockstep.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import simulate_trace
from repro.core.versions import prepare_codes
from repro.params import base_config, higher_mem_latency
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


@pytest.fixture(scope="module")
def codes_by_name():
    machine = base_config().scaled(TINY.machine_divisor)
    return {
        name: prepare_codes(get_spec(name), TINY, machine)
        for name in ("vpenta", "compress")
    }


def _assert_equivalent(packed_trace, machine, **kwargs):
    packed = simulate_trace(packed_trace, machine, **kwargs)
    objects = simulate_trace(packed_trace.to_trace(), machine, **kwargs)
    assert packed == objects


class TestPackedEquivalence:
    @pytest.mark.parametrize("name", ["vpenta", "compress"])
    def test_base_trace_no_assist(self, codes_by_name, name):
        machine = base_config().scaled(TINY.machine_divisor)
        _assert_equivalent(codes_by_name[name].base_trace, machine)

    @pytest.mark.parametrize("mechanism", ["bypass", "victim"])
    def test_optimized_trace_with_mechanism(self, codes_by_name, mechanism):
        machine = base_config().scaled(TINY.machine_divisor)
        _assert_equivalent(
            codes_by_name["vpenta"].optimized_trace,
            machine,
            mechanism=mechanism,
        )

    @pytest.mark.parametrize("mechanism", ["bypass", "victim"])
    def test_selective_trace_gated(self, codes_by_name, mechanism):
        """ON/OFF markers must toggle the gate identically in both loops."""
        machine = base_config().scaled(TINY.machine_divisor)
        _assert_equivalent(
            codes_by_name["compress"].selective_trace,
            machine,
            mechanism=mechanism,
            initially_on=False,
        )

    def test_alternate_machine_config(self, codes_by_name):
        machine = higher_mem_latency().scaled(TINY.machine_divisor)
        _assert_equivalent(
            codes_by_name["vpenta"].base_trace,
            machine,
            classify_misses=True,
        )

"""The packed and vectorized hot loops must be bit-identical to the
object reference loop.

``CPUSimulator.run`` keeps three implementations: the original
per-instruction reference loop, the columnar scalar fast path, and the
block-batched numpy kernels (:mod:`repro.cpu.vector`).  These tests run
all three on real benchmark traces — every benchmark, base and
selective versions, both machine configurations — and assert the
*entire* :class:`SimulationResult` (cycles, instruction counts, memory
snapshot) matches.  Any timing-model change must keep them in lockstep.

``vectorize=True`` forces the numpy kernels even on spans below the
``MIN_VECTOR_SPAN`` heuristic floor, so the TINY-scale traces here
genuinely exercise the vector path rather than falling back to scalar.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import simulate_trace
from repro.core.versions import prepare_codes
from repro.params import base_config, higher_mem_latency
from repro.workloads.base import TINY
from repro.workloads.registry import all_specs, get_spec

ALL_BENCHMARKS = [spec.name for spec in all_specs()]

CONFIGS = {
    "base_machine": base_config,
    "higher_mem_latency": higher_mem_latency,
}


@pytest.fixture(scope="module")
def codes_by_name():
    machine = base_config().scaled(TINY.machine_divisor)
    return {
        name: prepare_codes(get_spec(name), TINY, machine)
        for name in ALL_BENCHMARKS
    }


def _assert_equivalent(packed_trace, config, **kwargs):
    """Object loop == scalar packed loop == vectorized kernels."""
    divisor = TINY.machine_divisor
    objects = simulate_trace(
        packed_trace.to_trace(), config().scaled(divisor), **kwargs
    )
    scalar = simulate_trace(
        packed_trace, config().scaled(divisor), vectorize=False, **kwargs
    )
    vector = simulate_trace(
        packed_trace, config().scaled(divisor), vectorize=True, **kwargs
    )
    assert scalar == objects
    assert vector == objects


class TestPackedEquivalence:
    """Three-way matrix: 13 benchmarks x base/selective x both configs."""

    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_base_trace_no_assist(self, codes_by_name, name, config):
        _assert_equivalent(
            codes_by_name[name].base_trace, config, classify_misses=True
        )

    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_selective_trace_gated(self, codes_by_name, name, config):
        """ON/OFF markers must toggle the gate identically in all loops."""
        _assert_equivalent(
            codes_by_name[name].selective_trace,
            config,
            mechanism="bypass",
            initially_on=False,
        )

    @pytest.mark.parametrize("mechanism", ["bypass", "victim"])
    def test_optimized_trace_with_mechanism(self, codes_by_name, mechanism):
        """Assist always on: the vector driver must fall back everywhere."""
        _assert_equivalent(
            codes_by_name["vpenta"].optimized_trace,
            base_config,
            mechanism=mechanism,
        )

    @pytest.mark.parametrize("mechanism", ["bypass", "victim"])
    def test_selective_victim_mechanism(self, codes_by_name, mechanism):
        _assert_equivalent(
            codes_by_name["compress"].selective_trace,
            base_config,
            mechanism=mechanism,
            initially_on=False,
        )

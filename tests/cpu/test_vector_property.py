"""Property-based lockstep check for the vectorized simulator path.

Random packed traces — mixed opcodes, compressed ALU bursts, gate
toggles mid-trace, and miss storms sized to saturate the MSHR file and
the load/store queue — must produce bit-identical results through all
three execution paths (object reference loop, scalar packed loop,
block-batched numpy kernels).  Hypothesis shrinks any divergence down
to a minimal instruction sequence, which makes timing-model regressions
far easier to localise than a benchmark-level mismatch.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.experiment import simulate_trace
from repro.cpu.vector import MIN_VECTOR_SPAN
from repro.isa.instructions import Opcode
from repro.isa.packed import PackedTrace
from repro.params import base_config
from repro.workloads.base import TINY

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ALU = int(Opcode.ALU)
_BRANCH = int(Opcode.BRANCH)
_HW_ON = int(Opcode.HW_ON)
_HW_OFF = int(Opcode.HW_OFF)

#: A small address pool re-hits the same sets (LRU churn, conflict
#: misses); the storm stride walks distinct L2 lines so every access
#: goes to DRAM, queueing on the 8 MSHRs and wrapping the 32-entry LSQ.
_POOL = [0x1000 + 32 * i for i in range(24)]
_STORM_STRIDE = 4096


@st.composite
def packed_traces(draw):
    """A random packed trace built from opcode-mix chunks."""
    records = []
    pc = 0x400000

    def emit(op, arg, jump=0):
        nonlocal pc
        pc += 4 + jump
        records.append((op, arg, pc))

    n_chunks = draw(st.integers(min_value=3, max_value=12))
    gate_on = False
    for _ in range(n_chunks):
        kind = draw(
            st.sampled_from(
                ["mem_pool", "miss_storm", "alu_burst", "branches", "toggle"]
            )
        )
        if kind == "mem_pool":
            for _ in range(draw(st.integers(min_value=1, max_value=40))):
                addr = draw(st.sampled_from(_POOL))
                op = _STORE if draw(st.booleans()) else _LOAD
                emit(op, addr)
        elif kind == "miss_storm":
            start = draw(st.integers(min_value=0, max_value=1 << 20))
            for i in range(draw(st.integers(min_value=40, max_value=96))):
                emit(_LOAD, start + i * _STORM_STRIDE)
        elif kind == "alu_burst":
            for _ in range(draw(st.integers(min_value=1, max_value=10))):
                emit(_ALU, draw(st.integers(min_value=1, max_value=9)))
        elif kind == "branches":
            for _ in range(draw(st.integers(min_value=1, max_value=12))):
                taken = draw(st.booleans())
                jump = 64 if draw(st.booleans()) else 0
                emit(_BRANCH, int(taken), jump)
        else:  # toggle: keep ON/OFF alternating like real marker placement
            emit(_HW_OFF if gate_on else _HW_ON, 0)
            gate_on = not gate_on
    ops, args, pcs = zip(*records)
    return PackedTrace("prop", ops, args, pcs)


def _assert_three_way(trace, **kwargs):
    machine = base_config().scaled(TINY.machine_divisor)
    objects = simulate_trace(trace.to_trace(), machine, **kwargs)
    scalar = simulate_trace(
        trace,
        base_config().scaled(TINY.machine_divisor),
        vectorize=False,
        **kwargs,
    )
    vector = simulate_trace(
        trace,
        base_config().scaled(TINY.machine_divisor),
        vectorize=True,
        **kwargs,
    )
    assert scalar == objects
    assert vector == objects


class TestVectorProperty:
    @settings(max_examples=40, deadline=None)
    @given(trace=packed_traces())
    def test_no_assist(self, trace):
        _assert_three_way(trace, classify_misses=True)

    @settings(max_examples=40, deadline=None)
    @given(trace=packed_traces())
    def test_gated_assist(self, trace):
        """Toggles enable the assist: vector spans must interleave with
        scalar-fallback spans on shared timing state."""
        _assert_three_way(trace, mechanism="bypass", initially_on=False)


class TestMidSegmentFallbackResume:
    def test_vector_resumes_after_scalar_fallback_span(self):
        """vector span -> assist-on scalar span -> vector span again.

        Uses the automatic dispatch (``vectorize=None``): the gate-off
        spans exceed ``MIN_VECTOR_SPAN`` so they take the kernels, while
        the assist-enabled middle span runs the scalar fallback on the
        same ``_PackedState``.  The result must still match the object
        reference loop exactly.
        """
        records = []
        pc = 0x400000

        def emit(op, arg):
            nonlocal pc
            pc += 4
            records.append((op, arg, pc))

        span = MIN_VECTOR_SPAN + 64
        for i in range(span):
            emit(_LOAD, (i * 4096) % (1 << 20))
        emit(_HW_ON, 0)
        for i in range(200):
            emit(_STORE if i % 3 else _LOAD, _POOL[i % len(_POOL)])
        emit(_HW_OFF, 0)
        for i in range(span):
            emit(_ALU if i % 5 == 0 else _LOAD, (i * 32) % (1 << 16) or 1)
        ops, args, pcs = zip(*records)
        trace = PackedTrace("resume", ops, args, pcs)

        machine = base_config().scaled(TINY.machine_divisor)
        objects = simulate_trace(
            trace.to_trace(), machine, mechanism="victim", initially_on=False
        )
        auto = simulate_trace(
            trace,
            base_config().scaled(TINY.machine_divisor),
            mechanism="victim",
            initially_on=False,
        )
        assert auto == objects

"""Unit tests for the bimodal branch predictor."""

import pytest

from repro.cpu.branch import BimodalPredictor


class TestBimodal:
    def test_initially_weakly_taken(self):
        pred = BimodalPredictor(16)
        assert pred.predict_and_update(0, taken=True)

    def test_learns_always_taken(self):
        pred = BimodalPredictor(16)
        for _ in range(4):
            pred.predict_and_update(0, taken=True)
        assert pred.mispredictions == 0

    def test_learns_always_not_taken(self):
        pred = BimodalPredictor(16)
        for _ in range(10):
            pred.predict_and_update(0, taken=False)
        # One initial mispredict while the weakly-taken counter (2)
        # trains down past the threshold.
        assert pred.mispredictions == 1

    def test_hysteresis_tolerates_one_flip(self):
        pred = BimodalPredictor(16)
        for _ in range(4):
            pred.predict_and_update(0, taken=True)
        pred.predict_and_update(0, taken=False)  # one mispredict
        assert pred.predict_and_update(0, taken=True)  # still taken

    def test_indexing_by_pc(self):
        pred = BimodalPredictor(4)
        # Different counters: pc 0 trained not-taken must not affect
        # pc 4 (next index).
        for _ in range(4):
            pred.predict_and_update(0, taken=False)
        assert pred.predict_and_update(4, taken=True)

    def test_aliasing_wraps(self):
        pred = BimodalPredictor(4)
        for _ in range(4):
            pred.predict_and_update(0, taken=False)
        # pc 16 aliases to index 0 (16>>2 % 4 == 0).
        assert not pred.predict_and_update(16, taken=False) == False or True

    def test_misprediction_rate(self):
        pred = BimodalPredictor(16)
        pred.predict_and_update(0, taken=True)
        pred.predict_and_update(0, taken=False)
        assert pred.misprediction_rate == pytest.approx(0.5)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            BimodalPredictor(0)

"""Cross-cutting CPU-model semantics: monotonicity and composition."""


from repro.cpu.pipeline import CPUSimulator
from repro.hwopt.gate import HardwareGate
from repro.isa.trace import Trace, TraceBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config, higher_mem_latency


def simulate(trace, machine):
    hierarchy = MemoryHierarchy(machine)
    return CPUSimulator(
        machine, hierarchy, HardwareGate(None), model_ifetch=False
    ).run(trace)


def mixed_trace(seed=7, length=3000):
    import random
    rng = random.Random(seed)
    tb = TraceBuilder("mixed")
    for i in range(length):
        tb.set_pc(0x1000 + (i % 32) * 4)
        kind = rng.random()
        if kind < 0.4:
            tb.load(rng.randrange(0, 1 << 18) & ~7)
        elif kind < 0.5:
            tb.store(rng.randrange(0, 1 << 18) & ~7)
        elif kind < 0.9:
            tb.alu(rng.randrange(1, 4))
        else:
            tb.branch(rng.random() < 0.8)
    return tb.build()


class TestMonotonicity:
    def test_higher_latency_never_faster(self):
        trace = mixed_trace()
        fast = simulate(trace, base_config())
        slow = simulate(trace, higher_mem_latency())
        assert slow.cycles >= fast.cycles

    def test_prefix_cycles_monotone(self):
        trace = mixed_trace()
        machine = base_config()
        previous = 0
        for fraction in (0.25, 0.5, 0.75, 1.0):
            n = int(len(trace.instructions) * fraction)
            prefix = Trace("prefix", trace.instructions[:n])
            cycles = simulate(prefix, machine).cycles
            assert cycles >= previous
            previous = cycles

    def test_concatenation_superadditive_overlap(self):
        """Running A then B in one trace can't be slower than the sum
        of running them separately plus a small join overhead (state
        only helps: warm caches)."""
        machine = base_config()
        a = mixed_trace(seed=1, length=1500)
        b = mixed_trace(seed=2, length=1500)
        joint = Trace("ab", a.instructions + b.instructions)
        separate = (
            simulate(a, machine).cycles + simulate(b, machine).cycles
        )
        combined = simulate(joint, machine).cycles
        assert combined <= separate + 100


class TestAccounting:
    def test_instruction_count_exact(self):
        tb = TraceBuilder("count")
        tb.load(0)
        tb.alu(17)
        tb.store(8)
        tb.branch(True)
        tb.hw_on()
        result = simulate(tb.build(), base_config())
        assert result.instructions == 21
        assert result.loads == 1
        assert result.stores == 1
        assert result.branches == 1

    def test_empty_trace(self):
        result = simulate(Trace("empty", []), base_config())
        assert result.cycles == 0
        assert result.instructions == 0

    def test_result_snapshot_consistency(self):
        trace = mixed_trace(length=500)
        result = simulate(trace, base_config())
        memory = result.memory
        assert memory.l1d.accesses == result.loads + result.stores
        assert result.cycles > 0
        assert 0 < result.ipc <= base_config().issue_width

"""Tests for the trace-driven timing model."""


from repro.cpu.pipeline import CPUSimulator
from repro.hwopt.controller import VictimCacheAssist
from repro.hwopt.gate import HardwareGate
from repro.isa.trace import TraceBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import base_config


def run_trace(builder_fn, machine=None, assist=None, initially_on=True,
              model_ifetch=True):
    machine = machine or base_config()
    hierarchy = MemoryHierarchy(machine, assist)
    gate = HardwareGate(assist, initially_on=initially_on)
    simulator = CPUSimulator(machine, hierarchy, gate, model_ifetch)
    tb = TraceBuilder("t")
    builder_fn(tb)
    return simulator.run(tb.build()), gate


class TestIssueBandwidth:
    def test_alu_issue_rate(self):
        result, _gate = run_trace(lambda tb: tb.alu(400), model_ifetch=False)
        # 400 single-cycle ops at width 4: 100 cycles.
        assert result.cycles == 100
        assert result.instructions == 400

    def test_compressed_alu_counts_dynamic(self):
        def body(tb):
            tb.alu(7)
            tb.alu(9)
        result, _ = run_trace(body, model_ifetch=False)
        assert result.instructions == 16

    def test_ipc_bounded_by_width(self):
        result, _ = run_trace(lambda tb: tb.alu(1000), model_ifetch=False)
        assert result.ipc <= base_config().issue_width + 1e-9


class TestMemoryTiming:
    def test_hot_loads_fast(self):
        def body(tb):
            tb.load(0x1000)
            for _ in range(100):
                tb.load(0x1000)
        result, _ = run_trace(body, model_ifetch=False)
        # After the cold miss, L1 hits pipeline at the port rate.
        assert result.cycles < 300

    def test_miss_latency_visible(self):
        machine = base_config()

        def body(tb):
            # Misses spaced beyond the LSQ window serialize.
            for i in range(64):
                tb.load(0x100000 + i * 8192)
                tb.alu(200)
        result, _ = run_trace(body, machine, model_ifetch=False)
        issue_only = 64 * 201 / machine.issue_width
        assert result.cycles > issue_only

    def test_independent_misses_overlap(self):
        machine = base_config()

        def burst(tb):
            for i in range(32):
                tb.load(0x100000 + i * 8192)

        def spaced(tb):
            for i in range(32):
                tb.load(0x100000 + i * 8192)
                tb.alu(400)  # push each miss into its own window

        burst_result, _ = run_trace(burst, machine, model_ifetch=False)
        spaced_result, _ = run_trace(spaced, machine, model_ifetch=False)
        # The spaced version pays issue time 32*100 cycles; subtracting
        # it, its memory stall exceeds the fully-overlapped burst.
        assert burst_result.cycles < machine.mem_latency * 32
        assert spaced_result.cycles > burst_result.cycles

    def test_refill_bandwidth_bounds_miss_streams(self):
        machine = base_config()

        def stream(tb):
            # 256 distinct 32-byte lines = 64 cold 128-byte L2 blocks
            # plus 192 L2-served L1 fills.  Two floors apply: the L1
            # refill bus (4 beats per fill) and the MSHR limit (8
            # outstanding DRAM misses per memory latency).
            for i in range(256):
                tb.load(0x100000 + i * 32)
        result, _ = run_trace(stream, machine, model_ifetch=False)
        bus_floor = 256 * 4
        mshr_floor = (64 // machine.max_outstanding_misses) * (
            machine.mem_latency
        )
        assert result.cycles >= max(bus_floor, mshr_floor)


class TestBranches:
    def test_mispredict_penalty_charged(self):
        machine = base_config()

        def body(tb):
            for i in range(100):
                tb.set_pc(0x1000)
                tb.branch(i % 2 == 0)  # alternating: mispredicts a lot
        result, _ = run_trace(body, machine, model_ifetch=False)
        assert result.branch_mispredictions > 20
        assert result.cycles > 100 / machine.issue_width

    def test_loop_branch_predicts_well(self):
        def body(tb):
            for i in range(100):
                tb.set_pc(0x1000)
                tb.branch(i != 99)
        result, _ = run_trace(body, model_ifetch=False)
        assert result.branch_mispredictions <= 3


class TestMarkers:
    def test_markers_toggle_gate(self):
        machine = base_config()
        assist = VictimCacheAssist(machine)

        def body(tb):
            tb.hw_on()
            tb.load(0x1000)
            tb.hw_off()
        result, gate = run_trace(
            body, machine, assist, initially_on=False, model_ifetch=False
        )
        assert result.hw_toggles == 2
        assert not assist.enabled  # ended in the off state

    def test_markers_cost_issue_slots(self):
        def with_markers(tb):
            for _ in range(100):
                tb.hw_on()
                tb.hw_off()

        def without(tb):
            tb.alu(200)
        a, _ = run_trace(with_markers, model_ifetch=False)
        b, _ = run_trace(without, model_ifetch=False)
        assert a.instructions == b.instructions == 200
        assert a.cycles == b.cycles  # same issue bandwidth cost

    def test_gate_respected_by_hierarchy(self):
        machine = base_config()
        assist = VictimCacheAssist(machine)
        span = machine.l1d.num_sets * machine.l1d.block_size

        def body(tb):
            # Mechanism OFF: generate evictions that must NOT be captured.
            for way in range(6):
                tb.load(0x100000 + way * span)
            tb.hw_on()
            for way in range(6):
                tb.load(0x200000 + way * span)
        run_trace(body, machine, assist, initially_on=False,
                  model_ifetch=False)
        resident = [assist.l1_victim.contains(line) for line in
                    range(0x100000 // 32, 0x100000 // 32 + 1)]
        assert not any(resident)
        assert len(assist.l1_victim) >= 1  # captured while ON


class TestInstructionFetch:
    def test_ifetch_stalls_on_new_lines(self):
        def body(tb):
            for i in range(64):
                tb.set_pc(0x1000 + i * 1024)  # new I-line every time
                tb.alu(1)
        with_fetch, _ = run_trace(body)
        without, _ = run_trace(body, model_ifetch=False)
        assert with_fetch.cycles > without.cycles

    def test_loop_body_ifetch_warm(self):
        def body(tb):
            for _ in range(200):
                tb.set_pc(0x1000)
                tb.alu(1)
        result, _ = run_trace(body)
        # One cold fetch (ITLB + L1I + L2 + DRAM ~ 155 cycles) plus 50
        # issue cycles; every later fetch reuses the warm line.
        assert result.cycles < 250
        cold, _ = run_trace(lambda tb: (tb.set_pc(0x1000), tb.alu(1)))
        assert result.cycles - cold.cycles < 60

"""Unit and property tests for instructions, traces, and encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import decode_trace, encode_trace
from repro.isa.instructions import Instruction, Opcode
from repro.isa.trace import Trace, TraceBuilder


class TestInstruction:
    def test_memory_classification(self):
        assert Instruction(Opcode.LOAD, 0x100).is_memory
        assert Instruction(Opcode.STORE, 0x100).is_memory
        assert not Instruction(Opcode.ALU, 3).is_memory
        assert not Instruction(Opcode.HW_ON).is_memory

    def test_dynamic_count_expands_alu(self):
        assert Instruction(Opcode.ALU, 5).dynamic_count == 5
        assert Instruction(Opcode.ALU, 0).dynamic_count == 1
        assert Instruction(Opcode.LOAD, 0x8).dynamic_count == 1


class TestTraceBuilder:
    def test_builder_emits_in_order(self):
        tb = TraceBuilder("t")
        tb.load(0x10)
        tb.alu(2)
        tb.store(0x20)
        tb.branch(True)
        trace = tb.build()
        assert [i.op for i in trace] == [
            Opcode.LOAD, Opcode.ALU, Opcode.STORE, Opcode.BRANCH,
        ]

    def test_zero_alu_not_emitted(self):
        tb = TraceBuilder("t")
        tb.alu(0)
        assert len(tb.build()) == 0

    def test_pcs_advance(self):
        tb = TraceBuilder("t")
        tb.load(0)
        tb.load(0)
        a, b = tb.build().instructions
        assert b.pc == a.pc + TraceBuilder.PC_STRIDE

    def test_set_pc(self):
        tb = TraceBuilder("t")
        tb.set_pc(0x5000)
        tb.load(0)
        assert tb.build().instructions[0].pc == 0x5000

    def test_markers(self):
        tb = TraceBuilder("t")
        tb.hw_on()
        tb.hw_off()
        trace = tb.build()
        assert trace.marker_balance() == 0
        hist = trace.opcode_histogram()
        assert hist[Opcode.HW_ON] == 1 and hist[Opcode.HW_OFF] == 1


class TestTrace:
    def test_counters(self):
        tb = TraceBuilder("t")
        tb.load(0)
        tb.alu(10)
        tb.store(8)
        trace = tb.build()
        assert trace.memory_reference_count == 2
        assert trace.dynamic_instruction_count == 12

    def test_extend(self):
        a = TraceBuilder("a"); a.load(0)
        b = TraceBuilder("b"); b.store(8)
        trace = a.build()
        trace.extend(b.build())
        assert len(trace) == 2


_instruction_strategy = st.builds(
    Instruction,
    op=st.sampled_from(list(Opcode)),
    arg=st.integers(min_value=0, max_value=(1 << 40)),
    pc=st.integers(min_value=0, max_value=(1 << 31) - 1),
)


class TestEncoding:
    def test_simple_round_trip(self):
        tb = TraceBuilder("round")
        tb.load(0x1234)
        tb.hw_on()
        tb.branch(False)
        trace = tb.build()
        assert decode_trace(encode_trace(trace)).instructions == (
            trace.instructions
        )

    def test_name_preserved(self):
        trace = Trace("bench/selective", [])
        assert decode_trace(encode_trace(trace)).name == "bench/selective"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_trace(b"NOPE" + b"\x00" * 20)

    def test_truncation_rejected(self):
        tb = TraceBuilder("t")
        tb.load(0)
        data = encode_trace(tb.build())
        with pytest.raises(ValueError):
            decode_trace(data[:-3])

    @given(st.lists(_instruction_strategy, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, instructions):
        trace = Trace("prop", instructions)
        decoded = decode_trace(encode_trace(trace))
        assert decoded.instructions == instructions
        assert decoded.name == "prop"

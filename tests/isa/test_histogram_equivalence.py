"""Pin the engine-backed analysis helpers to the legacy implementations.

``reuse_distance_histogram`` was reimplemented on the Fenwick-indexed
LRU stack of :mod:`repro.locality`; this module keeps a copy of the
original O(N·M) OrderedDict implementation as ground truth and checks
label-for-label equality on real benchmark traces and adversarial
synthetic streams.  ``profile_trace`` gained a packed columnar path;
both paths must produce identical profiles.
"""

import random
from collections import OrderedDict

import pytest

from repro.isa.analysis import profile_trace, reuse_distance_histogram
from repro.isa.trace import TraceBuilder
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec

BENCHMARKS = ("perl", "swim", "tpcd_q1")


def legacy_reuse_distance_histogram(
    trace, line_size=32, buckets=(16, 64, 256, 1024)
):
    """The pre-engine implementation, verbatim (reversed-dict scan)."""
    stack: OrderedDict[int, None] = OrderedDict()
    labels = [f"<={b}" for b in buckets] + [f">{buckets[-1]}", "cold"]
    histogram = {label: 0 for label in labels}
    for inst in trace.instructions:
        if not inst.is_memory:
            continue
        line = inst.arg // line_size
        if line in stack:
            distance = 0
            for key in reversed(stack):
                if key == line:
                    break
                distance += 1
            for bucket, label in zip(buckets, labels):
                if distance <= bucket:
                    histogram[label] += 1
                    break
            else:
                histogram[f">{buckets[-1]}"] += 1
            stack.move_to_end(line)
        else:
            histogram["cold"] += 1
            stack[line] = None
    return histogram


@pytest.mark.parametrize("workload", BENCHMARKS)
def test_matches_legacy_on_benchmark_traces(workload):
    program = get_spec(workload).instantiate(TINY)
    trace = TraceGenerator(program).generate()
    new = reuse_distance_histogram(trace)
    old = legacy_reuse_distance_histogram(trace)
    assert new == old
    assert list(new) == list(old)  # label order preserved too


def test_matches_legacy_on_packed_form():
    program = get_spec("compress").instantiate(TINY)
    packed = TraceGenerator(program).generate_packed()
    assert reuse_distance_histogram(packed) == (
        legacy_reuse_distance_histogram(packed.to_trace())
    )


@pytest.mark.parametrize("seed", [3, 14, 159])
def test_matches_legacy_on_random_streams(seed):
    rng = random.Random(seed)
    tb = TraceBuilder("rand")
    for _ in range(4000):
        tb.load(rng.randrange(0, 1 << 16))
        if rng.random() < 0.3:
            tb.store(rng.randrange(0, 1 << 12))
    trace = tb.build()
    assert reuse_distance_histogram(trace) == (
        legacy_reuse_distance_histogram(trace)
    )


def test_custom_buckets_and_line_size():
    tb = TraceBuilder("edges")
    for i in range(300):
        tb.load(i * 64)
    tb.load(0)
    trace = tb.build()
    for buckets in ((1, 2), (4, 8, 300)):
        for line_size in (16, 64, 128):
            assert reuse_distance_histogram(
                trace, line_size=line_size, buckets=buckets
            ) == legacy_reuse_distance_histogram(
                trace, line_size=line_size, buckets=buckets
            )


def test_profile_trace_packed_equals_objects():
    program = get_spec("tpcd_q6").instantiate(TINY)
    packed = TraceGenerator(program).generate_packed()
    assert profile_trace(packed) == profile_trace(packed.to_trace())
    assert profile_trace(packed, line_size=64) == profile_trace(
        packed.to_trace(), line_size=64
    )

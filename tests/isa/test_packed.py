"""Round-trip and contract tests for the packed columnar trace."""

from __future__ import annotations

import pickle

import pytest

from repro.isa.encoding import decode_trace, encode_trace
from repro.isa.instructions import Instruction, Opcode
from repro.isa.packed import PackedTrace
from repro.isa.trace import Trace, TraceBuilder
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


def _mixed_trace() -> Trace:
    """A handcrafted trace covering every opcode."""
    tb = TraceBuilder("mixed")
    tb.load(0x1000)
    tb.alu(5)
    tb.store(0x2008)
    tb.branch(True)
    tb.hw_on()
    tb.load(0x1000)
    tb.hw_off()
    tb.branch(False)
    tb.alu(1)
    return tb.build()


def _generated_traces() -> list[tuple[Trace, PackedTrace]]:
    """Object/packed trace pairs from real benchmark programs."""
    pairs = []
    for name in ("vpenta", "compress"):
        spec = get_spec(name)
        obj = TraceGenerator(
            spec.instantiate(TINY), trace_name=f"{name}/t"
        ).generate()
        packed = TraceGenerator(
            spec.instantiate(TINY), trace_name=f"{name}/t"
        ).generate_packed()
        pairs.append((obj, packed))
    return pairs


class TestRoundTrip:
    def test_trace_packed_trace_identity(self):
        trace = _mixed_trace()
        back = PackedTrace.from_trace(trace).to_trace()
        assert back.name == trace.name
        assert back.instructions == trace.instructions

    def test_generated_benchmark_round_trip(self):
        for obj, _packed in _generated_traces():
            back = PackedTrace.from_trace(obj).to_trace()
            assert back.instructions == obj.instructions

    def test_builder_packed_matches_builder_object(self):
        for obj, packed in _generated_traces():
            assert len(obj) == len(packed)
            assert obj.instructions == packed.instructions

    def test_iteration_yields_instruction_records(self):
        packed = PackedTrace.from_trace(_mixed_trace())
        records = list(packed)
        assert all(isinstance(inst, Instruction) for inst in records)
        assert all(isinstance(inst.op, Opcode) for inst in records)
        assert records == _mixed_trace().instructions
        assert packed[1] == records[1]


class TestSummaryAgreement:
    def test_handcrafted_summaries(self):
        trace = _mixed_trace()
        packed = PackedTrace.from_trace(trace)
        assert len(packed) == len(trace)
        assert packed.dynamic_instruction_count == trace.dynamic_instruction_count
        assert packed.memory_reference_count == trace.memory_reference_count
        assert packed.opcode_histogram() == trace.opcode_histogram()
        assert packed.marker_balance() == trace.marker_balance()

    def test_generated_summaries(self):
        for obj, packed in _generated_traces():
            assert packed.dynamic_instruction_count == obj.dynamic_instruction_count
            assert packed.memory_reference_count == obj.memory_reference_count
            assert packed.opcode_histogram() == obj.opcode_histogram()
            assert packed.marker_balance() == obj.marker_balance()

    def test_extend_matches_trace_extend(self):
        a, b = _mixed_trace(), _mixed_trace()
        pa, pb = PackedTrace.from_trace(a), PackedTrace.from_trace(b)
        a.extend(b)
        pa.extend(pb)
        assert pa.instructions == a.instructions


class TestEncodingAndPickle:
    def test_encodes_identically_to_object_form(self):
        trace = _mixed_trace()
        packed = PackedTrace.from_trace(trace)
        assert encode_trace(packed) == encode_trace(trace)
        decoded = decode_trace(encode_trace(packed))
        assert decoded.instructions == trace.instructions

    def test_pickle_round_trip(self):
        packed = PackedTrace.from_trace(_mixed_trace())
        clone = pickle.loads(pickle.dumps(packed))
        assert clone == packed
        assert clone.instructions == packed.instructions


class TestChecksum:
    """The run store keys sweep cells by this digest (see runstore)."""

    def test_deterministic_and_name_independent(self):
        packed = PackedTrace.from_trace(_mixed_trace())
        renamed = PackedTrace(
            "other-name", *(array[:] for array in packed.columns())
        )
        assert packed.checksum() == packed.checksum()
        assert renamed.checksum() == packed.checksum()

    def test_round_trip_preserves_checksum(self):
        packed = PackedTrace.from_trace(_mixed_trace())
        assert PackedTrace.from_trace(packed.to_trace()).checksum() == (
            packed.checksum()
        )
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.checksum() == packed.checksum()

    @pytest.mark.parametrize("column", [0, 1, 2])
    def test_single_word_corruption_detected(self, column):
        packed = PackedTrace.from_trace(_mixed_trace())
        columns = [array[:] for array in packed.columns()]
        columns[column][3] ^= 1  # flip one bit of one word
        corrupted = PackedTrace(packed.name, *columns)
        assert corrupted.checksum() != packed.checksum()

    def test_swapped_columns_detected(self):
        # The digest is column-position-sensitive: exchanging the args
        # and pcs columns of equal length must change it.
        ops, args, pcs = (
            array[:] for array in PackedTrace.from_trace(_mixed_trace()).columns()
        )
        straight = PackedTrace("t", ops, args, pcs)
        swapped = PackedTrace("t", ops, pcs, args)
        assert straight.checksum() != swapped.checksum()

    def test_empty_columns_checksum(self):
        assert PackedTrace("a").checksum() == PackedTrace("b").checksum()


class TestValidation:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PackedTrace("bad", ops=[0, 1], args=[0], pcs=[0, 4])

    def test_empty_trace(self):
        empty = PackedTrace("empty")
        assert len(empty) == 0
        assert empty.dynamic_instruction_count == 0
        assert empty.memory_reference_count == 0
        assert empty.opcode_histogram() == {}
        assert empty.marker_balance() == 0

"""End-to-end integration tests: the full pipeline at tiny scale.

These exercise the same path as the paper's evaluation — build, detect
regions, optimize, mark, trace, simulate all versions — and check the
qualitative invariants on a representative benchmark subset.  Full
13-benchmark runs live in benchmarks/.
"""

import pytest

from repro import (
    TINY,
    base_config,
    get_spec,
    prepare_codes,
    run_benchmark,
    run_suite,
)
from repro.isa import Opcode

SUBSET = ["vpenta", "perl", "tpcd_q3", "chaos"]


@pytest.fixture(scope="module")
def subset_runs():
    machine = base_config().scaled(TINY.machine_divisor)
    runs = {}
    for name in SUBSET:
        codes = prepare_codes(get_spec(name), TINY, machine)
        runs[name] = run_benchmark(codes, machine)
    return runs


class TestPipelineInvariants:
    def test_all_versions_execute(self, subset_runs):
        for name, run in subset_runs.items():
            for key, result in run.results.items():
                assert result.cycles > 0, f"{name}/{key}"
                assert result.instructions > 0, f"{name}/{key}"

    def test_selective_not_worse_than_combined(self, subset_runs):
        """The paper's headline invariant.

        Strict for the bypass mechanism (the paper's primary results).
        The victim variant gets a looser bound: with the scaled-down
        victim caches, an always-on victim can recover residual
        software-phase conflicts that the selective version forgoes by
        switching off — a measured deviation documented in
        EXPERIMENTS.md.
        """
        tolerance = {"bypass": 2.0, "victim": 10.0}
        for name, run in subset_runs.items():
            for mechanism in ("bypass", "victim"):
                selective = run.improvement(f"selective/{mechanism}")
                combined = run.improvement(f"combined/{mechanism}")
                assert selective >= combined - tolerance[mechanism], (
                    f"{name}/{mechanism}: selective {selective:.2f} "
                    f"vs combined {combined:.2f}"
                )

    def test_software_wins_on_regular(self, subset_runs):
        run = subset_runs["vpenta"]
        assert run.improvement("pure_sw") > 5.0

    def test_software_neutral_on_irregular(self, subset_runs):
        run = subset_runs["perl"]
        assert run.improvement("pure_sw") == pytest.approx(0.0, abs=1.0)

    def test_victim_never_hurts(self, subset_runs):
        for name, run in subset_runs.items():
            assert run.improvement("pure_hw/victim") >= -0.5, name

    def test_marker_counts_match_trace(self, subset_runs):
        machine = base_config().scaled(TINY.machine_divisor)
        codes = prepare_codes(get_spec("tpcd_q3"), TINY, machine)
        hist = codes.selective_trace.opcode_histogram()
        result = run_benchmark(codes, machine).results["selective/bypass"]
        assert result.hw_toggles == hist[Opcode.HW_ON] + hist[Opcode.HW_OFF]

    def test_instruction_counts_version_relations(self, subset_runs):
        """Selective adds only marker instructions on top of optimized."""
        machine = base_config().scaled(TINY.machine_divisor)
        codes = prepare_codes(get_spec("chaos"), TINY, machine)
        opt = codes.optimized_trace.dynamic_instruction_count
        sel = codes.selective_trace.dynamic_instruction_count
        markers = codes.selective_trace.opcode_histogram()
        extra = markers[Opcode.HW_ON] + markers[Opcode.HW_OFF]
        assert sel == opt + extra


class TestSuiteRunner:
    def test_suite_round_trip(self):
        suite = run_suite(
            TINY,
            benchmarks=["vpenta"],
            configs={"Base Confg.": base_config},
            mechanisms=("bypass",),
        )
        sweep = suite.sweep("Base Confg.")
        assert sweep.runs["vpenta"].improvement("pure_sw") > 0.0

    def test_results_deterministic_across_suites(self):
        def one():
            suite = run_suite(
                TINY,
                benchmarks=["perl"],
                configs={"Base Confg.": base_config},
                mechanisms=("victim",),
            )
            return suite.sweep("Base Confg.").runs["perl"].baseline.cycles
        assert one() == one()

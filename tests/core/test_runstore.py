"""Crash-safe run store: keys, atomic writes, corruption detection."""

from __future__ import annotations

import dataclasses

from repro.core.faults import corrupt_stored_entry
from repro.core.runstore import RunStore, trace_checksum
from repro.isa.packed import PackedTrace
from repro.params import base_config, higher_mem_latency
from repro.workloads.base import SMALL, TINY


def _store(tmp_path) -> RunStore:
    return RunStore(tmp_path / "store")


def _key(store, **overrides) -> str:
    spec = dict(
        kind="cell",
        benchmark="vpenta",
        config="Base Confg.",
        scale=TINY,
        machine=base_config(),
        mechanisms=("bypass", "victim"),
        classify_misses=False,
        digests=("aa", "bb", "cc"),
    )
    spec.update(overrides)
    kind = spec.pop("kind")
    benchmark = spec.pop("benchmark")
    config = spec.pop("config")
    return store.cell_key(kind, benchmark, config, **spec)


class TestKeys:
    def test_deterministic(self, tmp_path):
        store = _store(tmp_path)
        assert _key(store) == _key(store)

    def test_every_identity_field_changes_the_key(self, tmp_path):
        store = _store(tmp_path)
        base = _key(store)
        assert _key(store, kind="table2") != base
        assert _key(store, benchmark="compress") != base
        assert _key(store, config="Higher Mem. Lat.") != base
        assert _key(store, scale=SMALL) != base
        assert _key(store, machine=higher_mem_latency()) != base
        assert _key(store, mechanisms=("bypass",)) != base
        assert _key(store, classify_misses=True) != base
        assert _key(store, digests=("aa", "bb", "zz")) != base

    def test_key_is_filename_safe(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store, benchmark="tpcd_q1", config="Higher L2 Asc.")
        path = store.path_for(key)
        assert path.parent == store.root
        assert "/" not in key and " " not in key

    def test_trace_checksum_object_and_packed_agree(self):
        packed = PackedTrace("t", ops=[1, 2], args=[3, 4], pcs=[0, 4])
        assert trace_checksum(packed) == trace_checksum(packed.to_trace())


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        store = _store(tmp_path)
        payload = {"cycles": 123, "nested": [1.5, "x"]}
        key = _key(store)
        store.put(key, payload, meta={"kind": "cell", "benchmark": "vpenta"})
        assert key in store
        assert store.get(key) == payload

    def test_missing_key(self, tmp_path):
        store = _store(tmp_path)
        assert store.get("nonesuch") is None
        assert "nonesuch" not in store
        assert not store.delete("nonesuch")

    def test_overwrite_replaces(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        store.put(key, "first")
        store.put(key, "second")
        assert store.get(key) == "second"
        assert len(store.keys()) == 1

    def test_no_temp_droppings(self, tmp_path):
        store = _store(tmp_path)
        store.put(_key(store), list(range(1000)))
        leftovers = [
            path for path in store.root.iterdir() if path.suffix == ".tmp"
        ]
        assert leftovers == []


class TestCorruption:
    def test_flipped_payload_byte_detected(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        store.put(key, {"value": 42})
        corrupt_stored_entry(store, key)
        assert store.get(key) is None
        assert key not in store
        (entry,) = store.entries()
        assert not entry.ok and "checksum" in entry.error

    def test_truncated_entry_detected(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        path = store.put(key, {"value": 42})
        path.write_bytes(path.read_bytes()[:-5])
        assert store.get(key) is None

    def test_garbage_file_detected(self, tmp_path):
        store = _store(tmp_path)
        path = store.path_for("junk")
        path.write_bytes(b"not a store entry at all")
        (entry,) = store.entries()
        assert not entry.ok and entry.error == "bad magic"

    def test_purge_corrupt_removes_only_bad_entries(self, tmp_path):
        store = _store(tmp_path)
        good, bad = _key(store), _key(store, benchmark="compress")
        store.put(good, "good")
        store.put(bad, "bad")
        corrupt_stored_entry(store, bad)
        assert store.purge_corrupt() == [bad]
        assert store.get(good) == "good"
        assert store.keys() == [good]


class TestEntries:
    def test_entries_report_meta(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        store.put(
            key,
            "payload",
            meta={"kind": "cell", "benchmark": "vpenta", "config": "Base Confg."},
        )
        (entry,) = store.entries()
        assert entry.ok
        assert entry.kind == "cell"
        assert entry.benchmark == "vpenta"
        assert entry.config == "Base Confg."
        assert entry.size > 0

    def test_machine_identity_uses_all_fields(self, tmp_path):
        # The key digests the *entire* MachineParams dataclass, so a new
        # field added later automatically invalidates old entries.
        machine = base_config()
        tweaked = dataclasses.replace(machine, mem_latency=machine.mem_latency + 1)
        store = _store(tmp_path)
        assert _key(store, machine=tweaked) != _key(store, machine=machine)


class TestStats:
    def test_empty_store(self, tmp_path):
        stats = _store(tmp_path).stats()
        assert (stats.entries, stats.bytes, stats.ok, stats.corrupt) == (
            0,
            0,
            0,
            0,
        )
        assert stats.by_kind == {}

    def test_counts_bytes_and_kinds(self, tmp_path):
        store = _store(tmp_path)
        store.put(
            _key(store), "a" * 100, meta={"kind": "cell", "benchmark": "v"}
        )
        store.put(
            _key(store, benchmark="compress"),
            "b",
            meta={"kind": "cell", "benchmark": "compress"},
        )
        store.put(
            _key(store, kind="table2"), "c", meta={"kind": "table2"}
        )
        stats = store.stats()
        assert stats.entries == 3
        assert stats.ok == 3 and stats.corrupt == 0
        assert stats.by_kind["cell"]["entries"] == 2
        assert stats.by_kind["table2"]["entries"] == 1
        assert stats.bytes == sum(
            entry.size for entry in store.entries()
        )
        assert (
            stats.by_kind["cell"]["bytes"] + stats.by_kind["table2"]["bytes"]
            == stats.bytes
        )

    def test_corrupt_entries_counted(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        store.put(key, "x", meta={"kind": "cell"})
        corrupt_stored_entry(store, key)
        stats = store.stats()
        assert stats.entries == 1 and stats.corrupt == 1 and stats.ok == 0
        # the header survives byte-flips in the payload, so the kind does
        assert stats.by_kind == {
            "cell": {"entries": 1, "bytes": stats.bytes}
        }

    def test_to_json_is_canonical(self, tmp_path):
        store = _store(tmp_path)
        store.put(_key(store), "x", meta={"kind": "cell"})
        doc = store.stats().to_json()
        assert doc["entries"] == 1
        assert list(doc["by_kind"]) == sorted(doc["by_kind"])


class TestScrub:
    def test_clean_store_scrubs_clean(self, tmp_path):
        store = _store(tmp_path)
        store.put(_key(store), "x", meta={"kind": "cell"})
        store.put(_key(store, kind="table2"), "y", meta={"kind": "table2"})
        report = store.scrub()
        assert report.clean
        assert report.checked == 2 and report.ok == 2
        assert report.corrupt == () and report.quarantined == ()

    def test_scrub_reports_corruption_without_quarantine(self, tmp_path):
        store = _store(tmp_path)
        good = _key(store)
        bad = _key(store, benchmark="compress")
        store.put(good, "x", meta={"kind": "cell"})
        store.put(bad, "y", meta={"kind": "cell"})
        corrupt_stored_entry(store, bad)
        report = store.scrub()
        assert not report.clean
        assert report.corrupt == (bad,)
        assert report.quarantined == ()
        assert "checksum" in report.errors[bad]
        # reported only: the entry stays in the key namespace
        assert bad in store.keys()

    def test_quarantine_moves_entry_out_of_namespace(self, tmp_path):
        store = _store(tmp_path)
        good = _key(store)
        bad = _key(store, benchmark="compress")
        store.put(good, "x", meta={"kind": "cell"})
        store.put(bad, "y", meta={"kind": "cell"})
        corrupt_stored_entry(store, bad)
        report = store.scrub(quarantine=True)
        assert report.quarantined == (bad,)
        assert bad not in store.keys()
        assert good in store.keys()
        # preserved for forensics, outside the key namespace
        quarantined = store.quarantine_dir() / store.path_for(bad).name
        assert quarantined.exists()
        # a later scrub of the survivors is clean
        assert store.scrub().clean

    def test_report_to_json_round_trips(self, tmp_path):
        store = _store(tmp_path)
        key = _key(store)
        store.put(key, "x", meta={"kind": "cell"})
        corrupt_stored_entry(store, key)
        doc = store.scrub(quarantine=True).to_json()
        assert doc["checked"] == 1 and doc["ok"] == 0
        assert doc["corrupt"] == [key] == doc["quarantined"]
        assert key in doc["errors"]

"""Parsing and matching of the fault-injection plan."""

from __future__ import annotations

import pytest

from repro.core.faults import (
    FAULTS_ENV,
    Fault,
    FaultInjected,
    FaultPlan,
)


class TestParsing:
    def test_empty_specs_inject_nothing(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")

    def test_single_entry(self):
        plan = FaultPlan.parse("exit:vpenta:Base Confg.:1")
        assert plan.entries == (
            Fault("exit", "vpenta", "Base Confg.", 1),
        )

    def test_multiple_entries_and_wildcards(self):
        plan = FaultPlan.parse("raise:*:*;hang:compress:Higher Mem. Lat.")
        assert len(plan.entries) == 2
        assert plan.entries[0].benchmark == "*"
        assert plan.entries[1].times is None

    def test_spec_round_trips(self):
        spec = "raise:vpenta:*:2;corrupt:*:Base Confg."
        assert FaultPlan.parse(spec).spec() == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:vpenta:*",  # unknown kind
            "raise:vpenta",  # too few fields
            "raise:a:b:c:d",  # too many fields
            "raise:vpenta:*:zero",  # non-integer times
            "raise:vpenta:*:0",  # non-positive times
        ],
    )
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exit:vpenta:*:1")
        assert FaultPlan.from_env().entries[0].kind == "exit"
        monkeypatch.delenv(FAULTS_ENV)
        assert not FaultPlan.from_env()


class TestMatching:
    def test_attempt_bounded_by_times(self):
        fault = Fault("exit", "vpenta", "*", times=2)
        assert fault.matches("vpenta", "Base Confg.", 0)
        assert fault.matches("vpenta", "Base Confg.", 1)
        assert not fault.matches("vpenta", "Base Confg.", 2)

    def test_unlimited_times_matches_every_attempt(self):
        fault = Fault("raise", "*", "*")
        assert fault.matches("anything", "anywhere", 10_000)

    def test_benchmark_and_config_filters(self):
        fault = Fault("raise", "vpenta", "Base Confg.")
        assert fault.matches("vpenta", "Base Confg.", 0)
        assert not fault.matches("compress", "Base Confg.", 0)
        assert not fault.matches("vpenta", "Higher Mem. Lat.", 0)

    def test_kind_selection(self):
        plan = FaultPlan.parse("corrupt:vpenta:*;raise:vpenta:*")
        execution = plan.execution_fault("vpenta", "Base Confg.", 0)
        assert execution is not None and execution.kind == "raise"
        stored = plan.store_fault("vpenta", "Base Confg.", 0)
        assert stored is not None and stored.kind == "corrupt"
        assert plan.execution_fault("compress", "Base Confg.", 0) is None

    def test_apply_execution_raise(self):
        plan = FaultPlan.parse("raise:vpenta:*:1")
        with pytest.raises(FaultInjected):
            plan.apply_execution("vpenta", "Base Confg.", 0)
        # attempt 1 is past ``times`` — no fault
        plan.apply_execution("vpenta", "Base Confg.", 1)
        plan.apply_execution("compress", "Base Confg.", 0)

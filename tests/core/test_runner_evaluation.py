"""Tests for the suite runner and the table/figure harness."""

import pytest

from repro.core.runner import run_suite
from repro.core.versions import BYPASS
from repro.evaluation.figures import FIGURES, figure_series
from repro.evaluation.report import (
    render_figure,
    render_table2,
    render_table3,
)
from repro.evaluation.table2 import Table2Row
from repro.evaluation.table3 import TABLE3_COLUMNS, sweep_to_row
from repro.params import base_config, higher_mem_latency
from repro.workloads.base import TINY


@pytest.fixture(scope="module")
def small_suite():
    """Two benchmarks on two configs at tiny scale (kept fast)."""
    return run_suite(
        TINY,
        benchmarks=["vpenta", "tpcd_q3"],
        configs={
            "Base Confg.": base_config,
            "Higher Mem. Lat.": higher_mem_latency,
        },
    )


class TestRunner:
    def test_configs_and_benchmarks_present(self, small_suite):
        assert small_suite.config_names() == [
            "Base Confg.", "Higher Mem. Lat.",
        ]
        for sweep in small_suite.sweeps.values():
            assert set(sweep.runs) == {"vpenta", "tpcd_q3"}

    def test_progress_callback(self):
        seen = []
        run_suite(
            TINY,
            benchmarks=["vpenta"],
            configs={"Base Confg.": base_config},
            mechanisms=(BYPASS,),
            progress=seen.append,
        )
        assert any("vpenta" in line for line in seen)

    def test_latency_sensitivity_is_reported(self, small_suite):
        """Both configurations produce comparable, finite improvements;
        the Figure 5 amplification trend itself is asserted at bench
        scale (benchmarks/test_fig5_memlat.py), where working sets
        exceed L2 as in the paper."""
        base = small_suite.sweep("Base Confg.")
        slow = small_suite.sweep("Higher Mem. Lat.")
        for name in ("vpenta", "tpcd_q3"):
            assert base.runs[name].improvement("pure_sw") > -100.0
            assert slow.runs[name].improvement("pure_sw") > -100.0


class TestTable3:
    def test_row_shape(self, small_suite):
        row = sweep_to_row("Base Confg.", small_suite.sweep("Base Confg."))
        assert len(row.averages) == len(TABLE3_COLUMNS)
        columns = row.by_column()
        assert set(columns) == set(TABLE3_COLUMNS)

    def test_render_includes_paper_values(self, small_suite):
        row = sweep_to_row("Base Confg.", small_suite.sweep("Base Confg."))
        text = render_table3([row])
        assert "Base Confg." in text
        assert "(paper)" in text
        assert "16.12" in text  # the paper's pure-software average


class TestFigures:
    def test_series_extraction(self, small_suite):
        series = figure_series(4, small_suite.sweep("Base Confg."))
        assert series.config_name == "Base Confg."
        assert set(series.bars) == {"vpenta", "tpcd_q3"}
        group = series.bars["vpenta"]
        assert set(group) == {
            "Pure Hardware", "Pure Software", "Combined", "Selective",
        }

    def test_unknown_figure_rejected(self, small_suite):
        with pytest.raises(KeyError):
            figure_series(3, small_suite.sweep("Base Confg."))

    def test_every_figure_maps_to_config(self):
        assert sorted(FIGURES) == [4, 5, 6, 7, 8, 9]

    def test_render(self, small_suite):
        series = figure_series(4, small_suite.sweep("Base Confg."))
        text = render_figure(series)
        assert "Figure 4" in text
        assert "vpenta" in text
        assert "average" in text


class TestTable2:
    def test_rows_for_subset(self):
        # Full table2_rows runs all 13 benchmarks; test the rendering
        # path with hand-made rows and the real path in integration.
        rows = [
            Table2Row("vpenta", "regular", 123456, 52.17, 39.79, 60.0),
        ]
        text = render_table2(rows)
        assert "vpenta" in text
        assert "52.17" in text

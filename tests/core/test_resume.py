"""End-to-end recovery: every fault kind against the hardened sweep.

These tests drive the fault-injection harness (:mod:`repro.core.faults`)
through the scheduler and the run store, proving each recovery path the
same way the static verify suite proved the compiler:

* a sweep killed mid-grid (worker ``os._exit``) resumes from the store
  to a result **bit-identical** to an uninterrupted serial run — this
  extends the serial/parallel determinism pin of
  tests/cpu/test_packed_equivalence.py and tests/core/test_parallel.py
  to the checkpoint/resume path;
* transient crashes and raises are absorbed by bounded retry;
* permanent failures degrade to a structured
  :class:`~repro.core.parallel.CellFailure` with the rest of the suite
  intact;
* hung workers are killed at the per-cell timeout;
* corrupted store entries are rejected by checksum verification and
  recomputed;
* an unusable worker pool falls back to in-process execution.
"""

from __future__ import annotations

import pytest

import repro.core.parallel as parallel
from repro.core.faults import FaultPlan
from repro.core.parallel import CellFailure, SweepInterrupted, run_grid
from repro.core.runner import run_suite
from repro.core.runstore import RunStore
from repro.core.versions import prepare_codes
from repro.params import SENSITIVITY_CONFIGS, base_config
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec

BENCHMARKS = ["vpenta", "compress"]
CONFIG_NAME = "Base Confg."
CONFIGS = {CONFIG_NAME: SENSITIVITY_CONFIGS[CONFIG_NAME]}
MECHANISMS = ("bypass",)
#: Fast-failure knobs shared by every sweep in this module.
FAST = dict(
    benchmarks=BENCHMARKS,
    configs=CONFIGS,
    mechanisms=MECHANISMS,
)


@pytest.fixture(scope="module")
def reference_suite():
    """The uninterrupted serial run every recovery must reproduce."""
    return run_suite(TINY, jobs=1, **FAST)


def assert_suites_equal(actual, expected):
    assert actual.config_names() == expected.config_names()
    for config_name in expected.sweeps:
        expected_sweep = expected.sweep(config_name)
        actual_sweep = actual.sweep(config_name)
        assert list(actual_sweep.runs) == list(expected_sweep.runs)
        for name, expected_run in expected_sweep.runs.items():
            actual_run = actual_sweep.runs[name]
            assert actual_run.version_keys() == expected_run.version_keys()
            for key in expected_run.version_keys():
                assert actual_run.results[key] == expected_run.results[key], (
                    f"{config_name}/{name}/{key}"
                )


class TestKilledSweepResumes:
    def test_os_exit_mid_grid_then_resume_is_bit_identical(
        self, tmp_path, reference_suite
    ):
        """The acceptance scenario: kill, resume, compare bit-for-bit."""
        store = RunStore(tmp_path / "store")
        reference_machine = base_config().scaled(TINY.machine_divisor)
        machines = {
            name: factory().scaled(TINY.machine_divisor)
            for name, factory in CONFIGS.items()
        }
        # One worker executes cells in order, so vpenta's cell completes
        # and checkpoints before compress's worker os._exits; raise mode
        # with no retries then kills the sweep mid-grid.
        with pytest.raises(SweepInterrupted) as excinfo:
            run_grid(
                [get_spec(name) for name in BENCHMARKS],
                machines,
                prepare=lambda spec: prepare_codes(
                    spec, TINY, reference_machine
                ),
                mechanisms=MECHANISMS,
                jobs=1,
                store=store,
                retries=0,
                faults=FaultPlan.parse("exit:compress:*"),
                on_failure="raise",
            )
        assert excinfo.value.failure.kind == "crash"
        assert excinfo.value.failure.benchmark == "compress"
        entries = store.entries()
        assert [e.benchmark for e in entries if e.ok] == ["vpenta"]

        # Resume without faults: vpenta restored, compress computed.
        messages: list[str] = []
        resumed = run_suite(
            TINY,
            jobs=2,
            store=store,
            resume=True,
            progress=messages.append,
            **FAST,
        )
        assert resumed.complete
        restored = [m for m in messages if "restored from store" in m]
        assert len(restored) == 1 and "vpenta" in restored[0]
        assert_suites_equal(resumed, reference_suite)

    def test_resume_false_recomputes_and_overwrites(
        self, tmp_path, reference_suite
    ):
        store = RunStore(tmp_path / "store")
        run_suite(TINY, jobs=2, store=store, **FAST)
        messages: list[str] = []
        rerun = run_suite(
            TINY,
            jobs=2,
            store=store,
            resume=False,
            progress=messages.append,
            **FAST,
        )
        assert not any("restored" in m for m in messages)
        assert_suites_equal(rerun, reference_suite)

    def test_serial_path_checkpoints_and_resumes(
        self, tmp_path, reference_suite
    ):
        store = RunStore(tmp_path / "store")
        first = run_suite(TINY, jobs=1, store=store, **FAST)
        assert len([e for e in store.entries() if e.ok]) == len(BENCHMARKS)
        messages: list[str] = []
        resumed = run_suite(
            TINY, jobs=1, store=store, progress=messages.append, **FAST
        )
        assert sum("restored from store" in m for m in messages) == len(
            BENCHMARKS
        )
        assert_suites_equal(first, reference_suite)
        assert_suites_equal(resumed, reference_suite)


class TestRetry:
    def test_transient_worker_exit_recovered(self, reference_suite):
        suite = run_suite(
            TINY,
            jobs=2,
            retries=2,
            backoff=0.05,
            faults=FaultPlan.parse("exit:vpenta:*:1"),
            **FAST,
        )
        assert suite.complete
        assert_suites_equal(suite, reference_suite)

    def test_transient_raise_recovered(self, reference_suite):
        suite = run_suite(
            TINY,
            jobs=2,
            retries=1,
            backoff=0.05,
            faults=FaultPlan.parse("raise:compress:*:1"),
            **FAST,
        )
        assert suite.complete
        assert_suites_equal(suite, reference_suite)


class TestGracefulDegradation:
    def test_exhausted_retries_yield_structured_failure(
        self, reference_suite
    ):
        suite = run_suite(
            TINY,
            jobs=2,
            retries=1,
            backoff=0.05,
            faults=FaultPlan.parse("raise:vpenta:*"),
            **FAST,
        )
        assert not suite.complete
        (failure,) = suite.failures
        assert isinstance(failure, CellFailure)
        assert failure.kind == "error"
        assert failure.benchmark == "vpenta"
        assert failure.config == CONFIG_NAME
        assert failure.attempts == 2
        assert "FaultInjected" in failure.message
        assert "vpenta" in suite.failure_report()
        # The surviving benchmark is still bit-identical.
        sweep = suite.sweep(CONFIG_NAME)
        assert list(sweep.runs) == ["compress"]
        assert (
            sweep.runs["compress"].results
            == reference_suite.sweep(CONFIG_NAME).runs["compress"].results
        )

    def test_hung_worker_killed_at_timeout(self):
        suite = run_suite(
            TINY,
            benchmarks=["vpenta"],
            configs=CONFIGS,
            mechanisms=MECHANISMS,
            jobs=2,
            retries=0,
            timeout=2.0,
            faults=FaultPlan.parse("hang:vpenta:*"),
        )
        (failure,) = suite.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert "timeout" in failure.message
        # The timed-out cell ran for at least the timeout; its report
        # carries what the dead cell actually cost.
        assert failure.duration >= 2.0
        assert f"in {failure.duration:.1f}s" in failure.describe()

    def test_broken_pool_falls_back_in_process(
        self, monkeypatch, reference_suite
    ):
        def broken(fn, task):
            raise OSError("fork failed (simulated)")

        monkeypatch.setattr(parallel, "_start_worker", broken)
        messages: list[str] = []
        suite = run_suite(
            TINY, jobs=2, progress=messages.append, **FAST
        )
        assert suite.complete
        assert any("in-process" in m for m in messages)
        assert_suites_equal(suite, reference_suite)


class TestCorruptStore:
    def test_corrupt_entry_rejected_and_recomputed(
        self, tmp_path, reference_suite
    ):
        store = RunStore(tmp_path / "store")
        first = run_suite(
            TINY,
            jobs=2,
            store=store,
            faults=FaultPlan.parse("corrupt:vpenta:*"),
            **FAST,
        )
        # In-memory results are unaffected; only the checkpoint is bad.
        assert_suites_equal(first, reference_suite)
        bad = [e for e in store.entries() if not e.ok]
        assert [e.benchmark for e in bad] == ["vpenta"]

        messages: list[str] = []
        resumed = run_suite(
            TINY,
            jobs=2,
            store=store,
            resume=True,
            progress=messages.append,
            **FAST,
        )
        restored = [m for m in messages if "restored from store" in m]
        assert len(restored) == 1 and "compress" in restored[0]
        assert_suites_equal(resumed, reference_suite)
        # The recompute re-checkpointed a good entry.
        assert all(e.ok for e in store.entries())

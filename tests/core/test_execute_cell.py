"""Single-cell scheduler: retry/timeout/fallback semantics.

:func:`repro.core.parallel.execute_cell` is the blocking building
block the sweep service runs cold cells on; these tests pin its
resilience contract without any HTTP involved.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import parallel
from repro.core.faults import EXIT_STATUS, FaultPlan
from repro.core.parallel import CellAttempt, CellFailure, execute_cell


def _echo(task):
    """Picklable worker: applies the fault plan, returns the payload."""
    payload, attempt, plan = task
    if plan is not None:
        plan.apply_execution("bench", "cfg", attempt)
    return payload


def _boom(task):
    raise RuntimeError("deliberate")


def _make(payload):
    return lambda attempt, plan: (payload, attempt, plan)


class TestSuccess:
    def test_returns_value_and_one_attempt(self):
        value, attempts = execute_cell(
            _echo, _make(41), benchmark="bench", config="cfg"
        )
        assert value == 41
        assert [a.status for a in attempts] == ["ok"]
        assert attempts[0].attempt == 1

    def test_on_attempt_sees_every_attempt(self):
        seen: list[CellAttempt] = []
        value, _ = execute_cell(
            _echo,
            _make("x"),
            benchmark="bench",
            config="cfg",
            plan=FaultPlan.parse("raise:*:*:1"),
            backoff=0.01,
            on_attempt=seen.append,
        )
        assert value == "x"
        assert [a.status for a in seen] == ["error", "ok"]
        assert [a.attempt for a in seen] == [1, 2]


class TestFailureModes:
    def test_error_exhausts_into_structured_failure(self):
        value, attempts = execute_cell(
            _boom,
            _make(None),
            benchmark="bench",
            config="cfg",
            retries=1,
            backoff=0.01,
        )
        assert isinstance(value, CellFailure)
        assert value.kind == "error"
        assert value.attempts == 2
        assert "deliberate" in value.message
        assert len(attempts) == 2

    def test_killed_worker_reports_crash_with_exit_code(self):
        value, _ = execute_cell(
            _echo,
            _make(1),
            benchmark="bench",
            config="cfg",
            plan=FaultPlan.parse("exit:*:*"),
            retries=0,
        )
        assert isinstance(value, CellFailure)
        assert value.kind == "crash"
        assert str(EXIT_STATUS) in value.message

    def test_hang_is_killed_at_the_deadline(self):
        started = time.monotonic()
        value, _ = execute_cell(
            _echo,
            _make(1),
            benchmark="bench",
            config="cfg",
            plan=FaultPlan.parse("hang:*:*"),
            timeout=0.5,
            retries=0,
        )
        assert isinstance(value, CellFailure)
        assert value.kind == "timeout"
        assert time.monotonic() - started < 30.0

    def test_fault_recovered_within_retry_budget(self):
        value, attempts = execute_cell(
            _echo,
            _make("ok"),
            benchmark="bench",
            config="cfg",
            plan=FaultPlan.parse("exit:*:*:1"),
            retries=2,
            backoff=0.01,
        )
        assert value == "ok"
        assert [a.status for a in attempts] == ["crash", "ok"]


class TestFallback:
    def test_broken_pool_runs_in_process_with_faults_stripped(
        self, monkeypatch
    ):
        def refuse(fn, task):
            raise OSError("no processes")

        monkeypatch.setattr(parallel, "_start_worker", refuse)
        value, attempts = execute_cell(
            _echo,
            _make(7),
            benchmark="bench",
            config="cfg",
            plan=FaultPlan.parse("exit:*:*"),  # would kill this process
        )
        assert value == 7
        assert attempts[0].fallback


class TestCancellation:
    def test_preset_cancel_never_starts_a_worker(self, monkeypatch):
        def explode(fn, task):  # pragma: no cover - must not run
            raise AssertionError("worker started for a cancelled cell")

        monkeypatch.setattr(parallel, "_start_worker", explode)
        cancel = threading.Event()
        cancel.set()
        value, attempts = execute_cell(
            _echo,
            _make(1),
            benchmark="bench",
            config="cfg",
            cancel=cancel,
        )
        assert isinstance(value, CellFailure)
        assert value.kind == "cancelled"
        assert [a.status for a in attempts] == ["cancelled"]

    def test_mid_run_cancel_kills_hung_worker_promptly(self):
        cancel = threading.Event()
        timer = threading.Timer(0.3, cancel.set)
        timer.start()
        started = time.monotonic()
        try:
            value, _ = execute_cell(
                _echo,
                _make(1),
                benchmark="bench",
                config="cfg",
                plan=FaultPlan.parse("hang:*:*"),  # sleeps 3600s
                retries=0,
                cancel=cancel,
            )
        finally:
            timer.cancel()
        elapsed = time.monotonic() - started
        assert isinstance(value, CellFailure)
        assert value.kind == "cancelled"
        # one poll period (0.5s) + kill, not the hang or any timeout
        assert elapsed < 10.0

    def test_cancel_skips_retry_backoff(self):
        cancel = threading.Event()
        seen: list[CellAttempt] = []

        def note(record: CellAttempt) -> None:
            seen.append(record)
            cancel.set()  # cancel during the post-failure backoff

        started = time.monotonic()
        value, _ = execute_cell(
            _boom,
            _make(None),
            benchmark="bench",
            config="cfg",
            retries=5,
            backoff=60.0,  # would dominate the test if actually slept
            on_attempt=note,
            cancel=cancel,
        )
        assert isinstance(value, CellFailure)
        assert value.kind == "cancelled"
        assert time.monotonic() - started < 10.0
        assert seen[0].status == "error"


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            execute_cell(
                _echo, _make(1), benchmark="b", config="c", retries=-1
            )

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError):
            execute_cell(
                _echo, _make(1), benchmark="b", config="c", timeout=0
            )

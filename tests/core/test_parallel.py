"""Serial vs parallel sweep equality and job resolution."""

from __future__ import annotations

import pytest

from repro.core.experiment import run_benchmark
from repro.core.parallel import resolve_jobs, run_benchmark_parallel
from repro.core.runner import run_suite
from repro.core.versions import prepare_codes
from repro.params import SENSITIVITY_CONFIGS, base_config
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec

BENCHMARKS = ["vpenta", "compress"]
CONFIGS = {
    name: SENSITIVITY_CONFIGS[name]
    for name in ("Base Confg.", "Higher Mem. Lat.")
}


@pytest.fixture(scope="module")
def serial_suite():
    return run_suite(TINY, benchmarks=BENCHMARKS, configs=CONFIGS, jobs=1)


class TestSerialParallelEquality:
    def test_identical_results_every_cell(self, serial_suite):
        parallel_suite = run_suite(
            TINY, benchmarks=BENCHMARKS, configs=CONFIGS, jobs=2
        )
        assert parallel_suite.config_names() == serial_suite.config_names()
        for config_name in serial_suite.sweeps:
            serial_sweep = serial_suite.sweep(config_name)
            parallel_sweep = parallel_suite.sweep(config_name)
            assert list(parallel_sweep.runs) == list(serial_sweep.runs)
            for name, serial_run in serial_sweep.runs.items():
                parallel_run = parallel_sweep.runs[name]
                assert parallel_run.version_keys() == serial_run.version_keys()
                for key in serial_run.version_keys():
                    assert (
                        parallel_run.results[key] == serial_run.results[key]
                    ), f"{config_name}/{name}/{key}"
                    assert parallel_run.improvement(key) == pytest.approx(
                        serial_run.improvement(key), abs=0.0
                    )

    def test_progress_callback_fires_once_per_cell(self):
        messages: list[str] = []
        run_suite(
            TINY,
            benchmarks=BENCHMARKS,
            configs=CONFIGS,
            jobs=2,
            progress=messages.append,
        )
        preparing = [m for m in messages if m.startswith("preparing")]
        done = [m for m in messages if "done" in m]
        assert len(preparing) == len(BENCHMARKS)
        assert len(done) == len(BENCHMARKS) * len(CONFIGS)

    def test_run_benchmark_parallel_matches_sequential(self):
        machine = base_config().scaled(TINY.machine_divisor)
        codes = prepare_codes(get_spec("vpenta"), TINY, machine)
        sequential = run_benchmark(codes, machine)
        parallel = run_benchmark_parallel(codes, machine, jobs=2)
        assert parallel.version_keys() == sequential.version_keys()
        for key in sequential.version_keys():
            assert parallel.results[key] == sequential.results[key]


class TestResolveJobs:
    def test_explicit_positive_value(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs(1) == 1

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_value_rejected(self, bad):
        # Silently clamping 0/negative to one worker used to hide
        # misconfigured callers; now it is a hard error.
        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs(bad)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    @pytest.mark.parametrize("bad", ["0", "-2"])
    def test_non_positive_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_env_ignored_when_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == max(os.cpu_count() or 1, 1)


class TestSweepTimeline:
    """The optional wall-clock timeline observes sweeps without changing them."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_records_prepare_and_cell_spans(self, serial_suite, jobs):
        from repro.telemetry import SweepTimeline

        timeline = SweepTimeline()
        suite = run_suite(
            TINY,
            benchmarks=BENCHMARKS,
            configs=CONFIGS,
            jobs=jobs,
            timeline=timeline,
        )
        # Observation is passive: results identical to the untimed run.
        for config_name in serial_suite.sweeps:
            assert (
                suite.sweep(config_name).runs.keys()
                == serial_suite.sweep(config_name).runs.keys()
            )
        prepares = timeline.by_status("prepare")
        oks = timeline.by_status("ok")
        assert len(prepares) == len(BENCHMARKS)
        assert len(oks) == len(BENCHMARKS) * len(CONFIGS)
        assert all(span.end >= span.start >= 0.0 for span in timeline.spans)
        assert {span.benchmark for span in oks} == set(BENCHMARKS)
        assert timeline.total_busy_seconds() > 0.0

    def test_exports_as_valid_chrome_trace(self):
        from repro.telemetry import SweepTimeline, sweep_trace_events, validate_trace

        timeline = SweepTimeline()
        run_suite(
            TINY,
            benchmarks=["vpenta"],
            configs=CONFIGS,
            jobs=2,
            timeline=timeline,
        )
        counts = validate_trace(sweep_trace_events(timeline))
        assert counts["spans"] == len(timeline)


class TestSweepAggregation:
    def test_total_memory_merges_all_benchmarks(self, serial_suite):
        from repro.core.sweep import SweepResult

        sweep = serial_suite.sweep("Base Confg.")
        total = sweep.total_memory("base")
        assert total.l1d.accesses == sum(
            run.results["base"].memory.l1d.accesses
            for run in sweep.runs.values()
        )
        assert total.mem_reads == sum(
            run.results["base"].memory.mem_reads
            for run in sweep.runs.values()
        )
        assert SweepResult("empty").total_memory("base") is None

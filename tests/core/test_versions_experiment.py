"""Tests for code-version preparation and the experiment drivers."""

import pytest

from repro.core.experiment import run_benchmark, simulate_trace
from repro.core.sweep import run_sweep
from repro.core.versions import (
    BYPASS,
    MECHANISMS,
    VICTIM,
    make_assist,
    prepare_codes,
)
from repro.hwopt.controller import CacheBypassAssist, VictimCacheAssist
from repro.isa import Opcode
from repro.params import base_config
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


@pytest.fixture(scope="module")
def machine():
    return base_config().scaled(TINY.machine_divisor)


@pytest.fixture(scope="module")
def vpenta_codes(machine):
    return prepare_codes(get_spec("vpenta"), TINY, machine)


@pytest.fixture(scope="module")
def chaos_codes(machine):
    return prepare_codes(get_spec("chaos"), TINY, machine)


class TestPrepareCodes:
    def test_three_traces_exist(self, vpenta_codes):
        assert len(vpenta_codes.base_trace) > 0
        assert len(vpenta_codes.optimized_trace) > 0
        assert len(vpenta_codes.selective_trace) > 0

    def test_base_has_no_markers(self, vpenta_codes):
        hist = vpenta_codes.base_trace.opcode_histogram()
        assert hist[Opcode.HW_ON] == 0 and hist[Opcode.HW_OFF] == 0

    def test_optimized_has_no_markers(self, chaos_codes):
        hist = chaos_codes.optimized_trace.opcode_histogram()
        assert hist[Opcode.HW_ON] == 0 and hist[Opcode.HW_OFF] == 0

    def test_selective_mixed_code_has_markers(self, chaos_codes):
        hist = chaos_codes.selective_trace.opcode_histogram()
        assert hist[Opcode.HW_ON] > 0
        assert chaos_codes.markers.inserted > 0

    def test_pure_software_code_needs_no_markers(self, vpenta_codes):
        hist = vpenta_codes.selective_trace.opcode_histogram()
        assert hist[Opcode.HW_ON] == 0

    def test_same_memory_footprint_across_versions(self, vpenta_codes):
        """Optimization transforms addresses but must touch the same
        number of dynamic array elements or fewer (scalar replacement
        removes redundant accesses, never adds)."""
        base_refs = vpenta_codes.base_trace.memory_reference_count
        opt_refs = vpenta_codes.optimized_trace.memory_reference_count
        assert 0 < opt_refs <= base_refs

    def test_optimization_report_attached(self, vpenta_codes):
        assert vpenta_codes.optimization.regions is not None
        assert vpenta_codes.optimization.interchanged_nests >= 0


class TestMakeAssist:
    def test_mechanisms(self, machine):
        assert isinstance(make_assist(BYPASS, machine), CacheBypassAssist)
        assert isinstance(make_assist(VICTIM, machine), VictimCacheAssist)
        with pytest.raises(ValueError):
            make_assist("prefetcher", machine)


class TestRunBenchmark:
    def test_all_version_keys_present(self, vpenta_codes, machine):
        run = run_benchmark(vpenta_codes, machine)
        expected = {"base", "pure_sw"}
        for mech in MECHANISMS:
            expected |= {
                f"pure_hw/{mech}", f"combined/{mech}", f"selective/{mech}",
            }
        assert set(run.version_keys()) == expected

    def test_base_improvement_is_zero(self, vpenta_codes, machine):
        run = run_benchmark(vpenta_codes, machine)
        assert run.improvement("base") == pytest.approx(0.0)

    def test_regular_code_software_wins(self, vpenta_codes, machine):
        run = run_benchmark(vpenta_codes, machine)
        assert run.improvement("pure_sw") > 5.0
        assert run.improvement("pure_sw") > run.improvement(
            "pure_hw/bypass"
        )

    def test_selective_at_least_combined_bypass(self, chaos_codes, machine):
        run = run_benchmark(chaos_codes, machine)
        assert (
            run.improvement("selective/bypass")
            >= run.improvement("combined/bypass") - 1.0
        )

    def test_selective_toggles_only_on_mixed(self, chaos_codes, machine):
        run = run_benchmark(chaos_codes, machine)
        assert run.results["selective/bypass"].hw_toggles > 0
        assert run.results["combined/bypass"].hw_toggles == 0


class TestSimulateTrace:
    def test_mechanism_none_runs_plain(self, vpenta_codes, machine):
        result = simulate_trace(vpenta_codes.base_trace, machine)
        assert result.memory.assist_hits == 0

    def test_classify_misses_populates(self, vpenta_codes, machine):
        result = simulate_trace(
            vpenta_codes.base_trace, machine, classify_misses=True
        )
        stats = result.memory.l1d
        assert (
            stats.compulsory_misses
            + stats.capacity_misses
            + stats.conflict_misses
            == stats.misses
        )

    def test_deterministic(self, vpenta_codes, machine):
        a = simulate_trace(vpenta_codes.base_trace, machine)
        b = simulate_trace(vpenta_codes.base_trace, machine)
        assert a.cycles == b.cycles


class TestSweep:
    def test_sweep_aggregates(self, machine):
        codes = [
            prepare_codes(get_spec(name), TINY, machine)
            for name in ("vpenta", "perl")
        ]
        sweep = run_sweep(codes, machine, mechanisms=(BYPASS,))
        assert set(sweep.runs) == {"vpenta", "perl"}
        improvements = sweep.improvements("pure_sw")
        assert improvements["perl"] == pytest.approx(0.0, abs=0.5)
        average = sweep.average_improvement("pure_sw")
        assert average == pytest.approx(
            sum(improvements.values()) / 2
        )

    def test_category_average(self, machine):
        codes = [prepare_codes(get_spec("vpenta"), TINY, machine)]
        sweep = run_sweep(codes, machine, mechanisms=(BYPASS,))
        assert sweep.average_improvement("pure_sw", category="regular") \
            == sweep.average_improvement("pure_sw")
        with pytest.raises(ValueError):
            sweep.average_improvement("pure_sw", category="irregular")

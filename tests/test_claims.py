"""Tests for the claims checker, using synthetic sweeps."""


from repro.evaluation.claims import PAPER_CLAIMS, check_claims
from tests.test_evaluation_units import fake_run
from repro.core.sweep import SweepResult


def sweep_with(cycles_by_benchmark):
    sweep = SweepResult("fake")
    categories = {
        "swim": "regular", "mgrid": "regular", "vpenta": "regular",
        "adi": "regular", "perl": "irregular", "compress": "irregular",
        "li": "irregular", "applu": "irregular",
    }
    for name, cycles in cycles_by_benchmark.items():
        sweep.runs[name] = fake_run(
            name, categories.get(name, "mixed"), cycles
        )
    return sweep


def paper_shaped_sweep():
    """A sweep hand-built to satisfy every encoded claim."""
    def cycles(base, sw, hw_b, hw_v, comb_b, comb_v, sel_b, sel_v):
        return {
            "base": base, "pure_sw": sw,
            "pure_hw/bypass": hw_b, "pure_hw/victim": hw_v,
            "combined/bypass": comb_b, "combined/victim": comb_v,
            "selective/bypass": sel_b, "selective/victim": sel_v,
        }

    return sweep_with({
        # regular: software wins big, hardware ~neutral
        "swim": cycles(1000, 600, 1000, 995, 610, 605, 600, 600),
        "vpenta": cycles(1000, 500, 1002, 990, 505, 500, 500, 498),
        # irregular: software nothing, bypass hurts one, victim helps
        "perl": cycles(1000, 1000, 990, 980, 990, 980, 990, 980),
        "compress": cycles(1000, 1000, 1050, 995, 1050, 995, 1050, 995),
        # mixed
        "tpcc": cycles(1000, 800, 995, 990, 805, 795, 790, 785),
    })


class TestClaims:
    def test_paper_shaped_sweep_satisfies_all(self):
        verdicts = check_claims(paper_shaped_sweep())
        failing = [v.claim.key for v in verdicts if not v.holds]
        assert failing == []

    def test_claim_keys_unique(self):
        keys = [claim.key for claim in PAPER_CLAIMS]
        assert len(keys) == len(set(keys))

    def test_selective_regression_detected(self):
        sweep = paper_shaped_sweep()
        # Break the headline claim: selective much worse than combined.
        sweep.runs["tpcc"].results["selective/bypass"] = (
            sweep.runs["tpcc"].results["base"]
        )
        verdicts = {v.claim.key: v.holds for v in check_claims(sweep)}
        assert not verdicts["selective-ge-combined"]

    def test_victim_regression_detected(self):
        sweep = paper_shaped_sweep()
        from tests.test_evaluation_units import fake_result
        sweep.runs["perl"].results["pure_hw/victim"] = fake_result(1100)
        verdicts = {v.claim.key: v.holds for v in check_claims(sweep)}
        assert not verdicts["victim-never-hurts"]

    def test_check_never_raises(self):
        # An empty sweep must produce failing verdicts, not exceptions.
        verdicts = check_claims(SweepResult("empty"))
        assert all(isinstance(v.holds, bool) for v in verdicts)

"""Unit tests for the evaluation harness, on synthetic sweep data."""

import pytest

from repro.core.sweep import SweepResult
from repro.core.experiment import BenchmarkRun
from repro.cpu.results import SimulationResult
from repro.evaluation.figures import figure_series
from repro.evaluation.report import render_figure, render_table3
from repro.evaluation.table3 import (
    PAPER_TABLE3,
    TABLE3_COLUMNS,
    sweep_to_row,
)
from repro.memory.stats import CacheStats, HierarchySnapshot


def fake_result(cycles: int, name: str = "t") -> SimulationResult:
    snapshot = HierarchySnapshot(
        l1d=CacheStats(), l1i=CacheStats(), l2=CacheStats(),
        dtlb_misses=0, itlb_misses=0, mem_reads=0, mem_writes=0,
    )
    return SimulationResult(
        trace_name=name, machine_name="fake", cycles=cycles,
        instructions=cycles, loads=0, stores=0, branches=0,
        branch_mispredictions=0, hw_toggles=0, memory=snapshot,
    )


def fake_run(benchmark: str, category: str, cycles: dict) -> BenchmarkRun:
    run = BenchmarkRun(benchmark, category, "fake")
    for key, value in cycles.items():
        run.results[key] = fake_result(value)
    return run


ALL_KEYS = ["base", "pure_sw"] + [
    f"{v}/{m}"
    for v in ("pure_hw", "combined", "selective")
    for m in ("bypass", "victim")
]


def fake_sweep() -> SweepResult:
    sweep = SweepResult("fake")
    sweep.runs["alpha"] = fake_run(
        "alpha", "regular",
        {k: (100 if k == "base" else 80) for k in ALL_KEYS},
    )
    sweep.runs["beta"] = fake_run(
        "beta", "irregular",
        {k: (200 if k == "base" else 190) for k in ALL_KEYS},
    )
    return sweep


class TestImprovementArithmetic:
    def test_improvement_formula(self):
        base = fake_result(100)
        better = fake_result(80)
        assert better.improvement_over(base) == pytest.approx(20.0)
        worse = fake_result(130)
        assert worse.improvement_over(base) == pytest.approx(-30.0)

    def test_zero_base(self):
        assert fake_result(50).improvement_over(fake_result(0)) == 0.0

    def test_sweep_averages(self):
        sweep = fake_sweep()
        # alpha: 20%, beta: 5% -> mean 12.5%.
        assert sweep.average_improvement("pure_sw") == pytest.approx(12.5)
        assert sweep.average_improvement(
            "pure_sw", category="regular"
        ) == pytest.approx(20.0)


class TestTable3Synthetic:
    def test_row_from_sweep(self):
        row = sweep_to_row("Base Confg.", fake_sweep())
        assert row.experiment == "Base Confg."
        assert all(v == pytest.approx(12.5) for v in row.averages)

    def test_paper_reference_values_complete(self):
        assert set(PAPER_TABLE3) == {
            "Base Confg.", "Higher Mem. Lat.", "Larger L2 Size",
            "Larger L1 Size", "Higher L2 Asc.", "Higher L1 Asc.",
        }
        for values in PAPER_TABLE3.values():
            assert len(values) == len(TABLE3_COLUMNS)

    def test_render_alignment(self):
        row = sweep_to_row("Base Confg.", fake_sweep())
        text = render_table3([row], include_paper=False)
        assert "(paper)" not in text
        assert "12.50" in text


class TestFigureSynthetic:
    def test_series_and_averages(self):
        series = figure_series(4, fake_sweep())
        assert series.bars["alpha"]["Selective"] == pytest.approx(20.0)
        assert series.version_average("Selective") == pytest.approx(12.5)

    def test_render_contains_all_benchmarks(self):
        text = render_figure(figure_series(4, fake_sweep()))
        assert "alpha" in text and "beta" in text

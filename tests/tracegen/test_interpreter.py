"""Tests for the IR interpreter and address assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir.builder import ProgramBuilder, loop, stmt
from repro.compiler.ir.expr import MinExpr, var
from repro.compiler.ir.refs import (
    IndexedRef,
    NonAffineRef,
    PointerChaseRef,
    ScalarRef,
)
from repro.compiler.ir.stmts import MarkerStmt
from repro.isa import Opcode
from repro.tracegen.interpreter import TraceGenerator
from repro.tracegen.memory_map import assign_addresses


class TestMemoryMap:
    def test_alignment_and_order(self):
        b = ProgramBuilder("m")
        b.array("A", (100,))
        b.array("B", (100,))
        program = b.build()
        bases = assign_addresses(program, alignment=4096)
        assert bases["A"] % 4096 == 0
        assert bases["B"] > bases["A"]
        assert bases["B"] % 4096 == 0

    def test_skew_applied(self):
        b = ProgramBuilder("m")
        a = b.array("A", (100,))
        a.base_skew = 160
        program = b.build()
        bases = assign_addresses(program, alignment=4096)
        assert bases["A"] % 4096 == 160

    def test_no_overlap(self):
        b = ProgramBuilder("m")
        b.array("A", (1000,))
        decl_b = b.array("B", (1000,))
        decl_b.base_skew = 224
        b.array("C", (5, 5), pad=4)
        program = b.build()
        assign_addresses(program)
        spans = sorted(
            (d.base, d.base + d.footprint_bytes)
            for d in program.arrays.values()
        )
        for (lo1, hi1), (lo2, _hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2

    def test_deterministic(self):
        def build():
            b = ProgramBuilder("m")
            b.array("A", (64,))
            b.array("B", (64,))
            return b.build()
        assert assign_addresses(build()) == assign_addresses(build())

    def test_bad_alignment_rejected(self):
        b = ProgramBuilder("m")
        b.array("A", (4,))
        with pytest.raises(ValueError):
            assign_addresses(b.build(), alignment=1000)


class TestInterpreter:
    def test_loop_iteration_count(self):
        b = ProgramBuilder("t")
        a = b.array("A", (16,))
        i = var("i")
        b.append(loop("i", 0, 16, [stmt(reads=[a[i]], work=1)]))
        trace = TraceGenerator(b.build()).generate()
        loads = [inst for inst in trace if inst.op is Opcode.LOAD]
        assert len(loads) == 16

    def test_loop_addresses_sequential(self):
        b = ProgramBuilder("t")
        a = b.array("A", (8,))
        i = var("i")
        b.append(loop("i", 0, 8, [stmt(reads=[a[i]], work=1)]))
        trace = TraceGenerator(b.build()).generate()
        addrs = [inst.arg for inst in trace if inst.op is Opcode.LOAD]
        assert addrs == [addrs[0] + 8 * k for k in range(8)]

    def test_nested_loops_and_steps(self):
        b = ProgramBuilder("t")
        a = b.array("A", (8, 8))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, 8, [loop("j", 0, 8, [
            stmt(writes=[a[i, j]], work=1),
        ], step=2)]))
        trace = TraceGenerator(b.build()).generate()
        stores = [inst for inst in trace if inst.op is Opcode.STORE]
        assert len(stores) == 8 * 4

    def test_min_expr_bound(self):
        b = ProgramBuilder("t")
        a = b.array("A", (32,))
        i, t = var("i"), var("t")
        b.append(loop("t", 0, 32, [
            loop("i", t, MinExpr(32, t + 4), [
                stmt(reads=[a[i]], work=1),
            ]),
        ], step=4))
        trace = TraceGenerator(b.build()).generate()
        loads = [inst for inst in trace if inst.op is Opcode.LOAD]
        assert len(loads) == 32  # 8 tiles x 4

    def test_branch_pattern(self):
        b = ProgramBuilder("t")
        a = b.array("A", (4,))
        i = var("i")
        b.append(loop("i", 0, 4, [stmt(reads=[a[i]], work=1)]))
        trace = TraceGenerator(b.build()).generate()
        branches = [inst for inst in trace if inst.op is Opcode.BRANCH]
        assert [bool(br.arg) for br in branches] == [True, True, True, False]

    def test_stable_pcs_across_iterations(self):
        b = ProgramBuilder("t")
        a = b.array("A", (8,))
        i = var("i")
        b.append(loop("i", 0, 8, [stmt(reads=[a[i]], work=1)]))
        trace = TraceGenerator(b.build()).generate()
        load_pcs = {inst.pc for inst in trace if inst.op is Opcode.LOAD}
        assert len(load_pcs) == 1  # one static load site

    def test_scalar_refs_get_fixed_addresses(self):
        b = ProgramBuilder("t")
        s = ScalarRef("acc")
        b.append(loop("i", 0, 4, [stmt(reads=[s], writes=[s], work=1)]))
        trace = TraceGenerator(b.build()).generate()
        addrs = {inst.arg for inst in trace if inst.is_memory}
        assert len(addrs) == 1

    def test_indexed_ref_emits_two_accesses(self):
        b = ProgramBuilder("t")
        a = b.array("A", (16,))
        idx = b.index_array("IDX", np.arange(4)[::-1].copy())
        i = var("i")
        b.append(loop("i", 0, 4, [
            stmt(reads=[IndexedRef(a, idx[i])], work=1),
        ]))
        trace = TraceGenerator(b.build()).generate()
        loads = [inst for inst in trace if inst.op is Opcode.LOAD]
        assert len(loads) == 8  # index load + data load per iteration

    def test_pointer_chase_state_persists(self):
        b = ProgramBuilder("t")
        heap = b.array(
            "H", (4,), element_size=32,
            data=np.array([1, 2, 3, 0]),
        )
        b.append(loop("i", 0, 4, [
            stmt(reads=[PointerChaseRef(heap, "w", 0, 32)], work=1),
        ]))
        program = b.build()
        trace = TraceGenerator(program).generate()
        base = program.arrays["H"].base
        addrs = [inst.arg for inst in trace if inst.op is Opcode.LOAD]
        assert addrs == [base, base + 32, base + 64, base + 96]

    def test_register_ref_emits_nothing(self):
        from repro.compiler.ir.refs import RegisterRef
        b = ProgramBuilder("t")
        a = b.array("A", (4,))
        i = var("i")
        b.append(loop("i", 0, 4, [
            stmt(reads=[RegisterRef(a[i])], work=1),
        ]))
        trace = TraceGenerator(b.build()).generate()
        assert trace.memory_reference_count == 0

    def test_markers_emitted_per_execution(self):
        b = ProgramBuilder("t")
        a = b.array("A", (4,))
        i = var("i")
        b.append(loop("t", 0, 3, [
            MarkerStmt("on"),
            loop("i", 0, 4, [stmt(reads=[a[i]], work=1)]),
            MarkerStmt("off"),
        ]))
        trace = TraceGenerator(b.build()).generate()
        hist = trace.opcode_histogram()
        assert hist[Opcode.HW_ON] == 3
        assert hist[Opcode.HW_OFF] == 3

    def test_non_affine_ref(self):
        b = ProgramBuilder("t")
        a = b.array("D", (64,))
        b.append(loop("i", 0, 8, [
            stmt(reads=[NonAffineRef(a, lambda e: (e["i"] ** 2 % 64,))],
                 work=1),
        ]))
        program = b.build()
        trace = TraceGenerator(program).generate()
        base = program.arrays["D"].base
        addrs = [inst.arg for inst in trace if inst.op is Opcode.LOAD]
        assert addrs[3] == base + 9 * 8

    def test_determinism(self):
        def build():
            b = ProgramBuilder("t")
            a = b.array("A", (16,))
            idx = b.index_array("IDX", np.arange(16) * 3 % 16)
            i = var("i")
            b.append(loop("i", 0, 16, [
                stmt(reads=[a[i], IndexedRef(a, idx[i])], work=2),
            ]))
            return b.build()
        t1 = TraceGenerator(build()).generate()
        t2 = TraceGenerator(build()).generate()
        assert t1.instructions == t2.instructions

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_trip_counts_property(self, n, m):
        b = ProgramBuilder("t")
        a = b.array("A", (12, 12))
        i, j = var("i"), var("j")
        b.append(loop("i", 0, n, [loop("j", 0, m, [
            stmt(writes=[a[i, j]], work=1),
        ])]))
        trace = TraceGenerator(b.build()).generate()
        assert trace.memory_reference_count == n * m

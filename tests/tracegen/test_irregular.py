"""Tests for the synthetic irregular-data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracegen.irregular import (
    clustered_indices,
    hash_probe_indices,
    permutation_chain,
    uniform_indices,
    zipf_indices,
)


class TestPermutationChain:
    def test_single_cycle(self):
        chain = permutation_chain(100, seed=1)
        node, visited = 0, set()
        for _ in range(100):
            assert node not in visited
            visited.add(node)
            node = int(chain[node])
        assert node == 0  # back to start after exactly n steps
        assert len(visited) == 100

    def test_deterministic(self):
        assert np.array_equal(
            permutation_chain(50, seed=9), permutation_chain(50, seed=9)
        )

    def test_seed_changes_chain(self):
        assert not np.array_equal(
            permutation_chain(50, seed=1), permutation_chain(50, seed=2)
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            permutation_chain(0, seed=1)

    @given(st.integers(2, 64), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_cycle_property(self, n, seed):
        chain = permutation_chain(n, seed)
        assert sorted(chain) == list(range(n))  # a permutation
        node = 0
        for _ in range(n - 1):
            node = int(chain[node])
            assert node != 0  # no short cycle through the start


class TestZipf:
    def test_range_and_skew(self):
        idx = zipf_indices(10_000, 256, skew=1.2, seed=3)
        assert idx.min() >= 0 and idx.max() < 256
        counts = np.bincount(idx, minlength=256)
        top_mass = np.sort(counts)[::-1][:26].sum()
        assert top_mass > 0.5 * len(idx)  # top 10% take the majority

    def test_low_skew_flatter(self):
        hot = zipf_indices(10_000, 256, skew=1.5, seed=3)
        flat = zipf_indices(10_000, 256, skew=0.2, seed=3)
        def top(idx):
            return np.sort(np.bincount(idx, minlength=256))[-10:].sum()
        assert top(hot) > top(flat)

    def test_bad_universe(self):
        with pytest.raises(ValueError):
            zipf_indices(10, 0, 1.0, 1)


class TestClustered:
    def test_range(self):
        idx = clustered_indices(5_000, 1024, cluster=32, jumps=0.05, seed=4)
        assert idx.min() >= 0 and idx.max() < 1024

    def test_locality(self):
        idx = clustered_indices(5_000, 4096, cluster=16, jumps=0.02, seed=4)
        deltas = np.abs(np.diff(idx))
        # Most consecutive accesses stay within the cluster span.
        assert np.mean(deltas <= 32) > 0.9

    def test_jump_probability_validated(self):
        with pytest.raises(ValueError):
            clustered_indices(10, 100, 5, jumps=1.5, seed=1)


class TestOthers:
    def test_uniform_range(self):
        idx = uniform_indices(1_000, 77, seed=5)
        assert idx.min() >= 0 and idx.max() < 77

    def test_hash_probes_adjacent(self):
        probes = hash_probe_indices(100, 512, seed=6, probes_per_key=2)
        assert len(probes) == 200
        firsts, seconds = probes[0::2], probes[1::2]
        assert np.all((seconds - firsts) % 512 == 1)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.params import MachineParams, base_config
from repro.workloads.base import TINY, Scale


@pytest.fixture
def machine() -> MachineParams:
    """The paper's base configuration at full size."""
    return base_config()


@pytest.fixture
def scaled_machine() -> MachineParams:
    """The base configuration scaled for TINY workloads."""
    return base_config().scaled(TINY.machine_divisor)


@pytest.fixture
def tiny() -> Scale:
    return TINY

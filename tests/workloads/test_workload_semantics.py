"""Deeper semantic checks on individual workload models."""

import numpy as np
import pytest

from repro.isa import Opcode
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


def trace_of(name, scale=TINY):
    program = get_spec(name).instantiate(scale)
    return program, TraceGenerator(program).generate()


def touched_ranges(program, trace):
    """Map array name -> (touched_min, touched_max) byte addresses."""
    spans = {
        name: (decl.base, decl.base + decl.footprint_bytes)
        for name, decl in program.arrays.items()
    }
    touched = {}
    for inst in trace:
        if not inst.is_memory:
            continue
        for name, (lo, hi) in spans.items():
            if lo <= inst.arg < hi:
                old = touched.get(name, (inst.arg, inst.arg))
                touched[name] = (
                    min(old[0], inst.arg), max(old[1], inst.arg)
                )
                break
        else:
            pytest.fail(
                f"access 0x{inst.arg:x} outside every declared array"
            )
    return touched


class TestAddressDiscipline:
    @pytest.mark.parametrize(
        "name",
        ["perl", "li", "tpcc", "tpcd_q6"],  # the pointer-chasing ones
    )
    def test_no_accesses_escape_declared_arrays(self, name):
        program, trace = trace_of(name)
        touched_ranges(program, trace)  # fails internally on escape

    def test_perl_touches_all_its_structures(self):
        program, trace = trace_of("perl")
        touched = touched_ranges(program, trace)
        for expected in ("BC", "SYM", "HEAP", "LOOKUP", "UPDATE"):
            assert expected in touched, f"{expected} never accessed"

    def test_chaos_alternates_phases(self):
        """Edge (gather) and update phases interleave per time step."""
        program, trace = trace_of("chaos")
        vel = program.arrays["VEL"]
        ia = program.arrays["IA"]
        vel_span = (vel.base, vel.base + vel.footprint_bytes)
        ia_span = (ia.base, ia.base + ia.footprint_bytes)
        sequence = []
        for inst in trace:
            if not inst.is_memory:
                continue
            if vel_span[0] <= inst.arg < vel_span[1]:
                if not sequence or sequence[-1] != "update":
                    sequence.append("update")
            elif ia_span[0] <= inst.arg < ia_span[1]:
                if not sequence or sequence[-1] != "edge":
                    sequence.append("edge")
        # steps=3 at TINY: edge/update three times each, alternating.
        assert sequence == ["edge", "update"] * TINY.steps


class TestStreamStructure:
    def test_compress_streams_are_sequential(self):
        program, trace = trace_of("compress")
        input_buf = program.arrays["IN"]
        lo, hi = input_buf.base, input_buf.base + input_buf.footprint_bytes
        addrs = [
            inst.arg for inst in trace
            if inst.op is Opcode.LOAD and lo <= inst.arg < hi
        ]
        deltas = np.diff(addrs)
        assert np.all(deltas == input_buf.element_size)

    def test_li_heap_walk_covers_cycle(self):
        program, trace = trace_of("li")
        heap = program.arrays["HEAP"]
        lo = heap.base
        nodes = {
            (inst.arg - lo) // 32
            for inst in trace
            if inst.is_memory and lo <= inst.arg < lo
            + heap.footprint_bytes
        }
        # The walk should visit a large portion of the heap (single
        # cycle, evals >= nodes at tiny scale).
        assert len(nodes) >= heap.shape[0] // 2

    def test_tpcd_q1_group_table_is_hot(self):
        """The aggregation table must be far smaller than its access
        count (the hot-structure property the assists key on)."""
        program, trace = trace_of("tpcd_q1")
        agg = program.arrays["AGG"]
        lo, hi = agg.base, agg.base + agg.footprint_bytes
        accesses = sum(
            1 for inst in trace if inst.is_memory and lo <= inst.arg < hi
        )
        assert accesses > 3 * agg.element_count

"""Tests for the 13-benchmark workload suite."""

import pytest

from repro.compiler.analysis.classify import HARDWARE, SOFTWARE
from repro.compiler.regions.detect import detect_regions
from repro.tracegen.interpreter import TraceGenerator
from repro.workloads.base import SMALL, TINY, Scale
from repro.workloads.registry import (
    all_specs,
    get_spec,
    specs_by_category,
    workload_names,
)

EXPECTED_CATEGORIES = {
    "perl": "irregular",
    "compress": "irregular",
    "li": "irregular",
    "applu": "irregular",
    "swim": "regular",
    "mgrid": "regular",
    "vpenta": "regular",
    "adi": "regular",
    "chaos": "mixed",
    "tpcc": "mixed",
    "tpcd_q1": "mixed",
    "tpcd_q3": "mixed",
    "tpcd_q6": "mixed",
}


class TestRegistry:
    def test_all_thirteen_present(self):
        assert len(workload_names()) == 13
        assert set(workload_names()) == set(EXPECTED_CATEGORIES)

    def test_categories_match_paper(self):
        for spec in all_specs():
            assert spec.category == EXPECTED_CATEGORIES[spec.name]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_spec("nonesuch")

    def test_specs_by_category(self):
        assert len(specs_by_category("regular")) == 4
        assert len(specs_by_category("irregular")) == 4
        assert len(specs_by_category("mixed")) == 5
        with pytest.raises(KeyError):
            specs_by_category("imaginary")


@pytest.mark.parametrize("name", sorted(EXPECTED_CATEGORIES))
class TestEveryWorkload:
    def test_builds_and_traces(self, name):
        program = get_spec(name).instantiate(TINY)
        trace = TraceGenerator(program).generate()
        assert len(trace) > 100
        assert trace.memory_reference_count > 50

    def test_deterministic(self, name):
        spec = get_spec(name)
        t1 = TraceGenerator(spec.instantiate(TINY)).generate()
        t2 = TraceGenerator(spec.instantiate(TINY)).generate()
        assert t1.instructions == t2.instructions

    def test_region_detection_matches_category(self, name):
        spec = get_spec(name)
        program = spec.instantiate(TINY)
        report = detect_regions(program)
        prefs = set(report.preferences())
        if spec.category == "regular":
            assert prefs == {SOFTWARE}
        elif spec.category == "irregular":
            assert HARDWARE in prefs
            assert SOFTWARE not in prefs
        else:  # mixed: both region kinds must exist
            assert prefs == {SOFTWARE, HARDWARE}

    def test_scaling_grows_traces(self, name):
        spec = get_spec(name)
        tiny = TraceGenerator(spec.instantiate(TINY)).generate()
        small = TraceGenerator(spec.instantiate(SMALL)).generate()
        assert len(small) > len(tiny)

    def test_chase_footprints_cover_walk(self, name):
        """Pointer-chase arrays must declare element_size = node size,
        or the walk escapes the declared footprint (and can alias other
        arrays)."""
        from repro.compiler.ir.refs import PointerChaseRef
        program = get_spec(name).instantiate(TINY)
        for statement in program.all_statements():
            for ref in statement.references:
                if isinstance(ref, PointerChaseRef):
                    assert ref.array.element_size == ref.node_size


class TestScale:
    def test_degenerate_scale_rejected(self):
        with pytest.raises(ValueError):
            Scale("bad", n2d=4, n1d=4096, steps=1)

    def test_spec_name_mismatch_caught(self):
        from repro.workloads.base import WorkloadSpec

        def bad_builder(scale):
            return get_spec("perl").build(scale)

        spec = WorkloadSpec("notperl", "irregular", bad_builder)
        with pytest.raises(ValueError):
            spec.instantiate(TINY)

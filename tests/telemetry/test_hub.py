"""Unit tests for the telemetry hub, time series, and sweep timeline."""

from __future__ import annotations

import pytest

from repro.memory.stats import CacheStats, HierarchySnapshot
from repro.telemetry import SweepTimeline, Telemetry
from repro.telemetry.hub import GATE_SPAN
from repro.telemetry.series import SAMPLE_FIELDS, TimeSeries


def _snapshot(**overrides):
    base = dict(
        l1d=CacheStats(),
        l1i=CacheStats(),
        l2=CacheStats(),
        dtlb_misses=0,
        itlb_misses=0,
        mem_reads=0,
        mem_writes=0,
    )
    base.update(overrides)
    return HierarchySnapshot(**base)


def _bind(hub, gate_on=False):
    counters = tuple(0 for _ in range(len(SAMPLE_FIELDS) - 3))
    hub.bind(lambda: counters, _snapshot, gate_on=gate_on)
    return hub


class TestTimeSeries:
    def test_append_and_columns(self):
        series = TimeSeries()
        row = tuple(range(len(SAMPLE_FIELDS)))
        series.append(row)
        assert len(series) == 1
        assert series.column("cycle")[0] == 0
        assert next(iter(series.rows())) == dict(zip(SAMPLE_FIELDS, row))

    def test_append_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            TimeSeries().append((1, 2, 3))

    def test_interval_rates_are_deltas(self):
        series = TimeSeries()
        template = [0] * len(SAMPLE_FIELDS)
        for cycle, accesses, misses in [(0, 0, 0), (10, 100, 10), (20, 300, 20)]:
            row = list(template)
            row[SAMPLE_FIELDS.index("cycle")] = cycle
            row[SAMPLE_FIELDS.index("l1d_accesses")] = accesses
            row[SAMPLE_FIELDS.index("l1d_misses")] = misses
            series.append(tuple(row))
        rates = series.interval_rates("l1d_misses", "l1d_accesses")
        # Interval 1: 10/100; interval 2: 10/200.
        assert rates[1] == (10, pytest.approx(0.1))
        assert rates[2] == (20, pytest.approx(0.05))


class TestTelemetryHub:
    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            Telemetry(interval=-1)

    def test_bind_is_once_only(self):
        hub = _bind(Telemetry())
        with pytest.raises(RuntimeError):
            _bind(hub)

    def test_sample_requires_binding(self):
        with pytest.raises(RuntimeError):
            Telemetry(interval=10).sample(0, 0)

    def test_gate_transitions_make_spans_and_boundaries(self):
        hub = _bind(Telemetry(), gate_on=False)
        hub.now, hub.instructions = 100, 50
        hub.gate_changed(True)
        hub.now, hub.instructions = 300, 150
        hub.gate_changed(False)
        hub.finish(1000, 400)
        spans = hub.gate_spans()
        assert [(s.begin, s.end) for s in spans] == [(100, 300)]
        assert spans[0].name == GATE_SPAN
        # Boundaries: t=0, both transitions, run end.
        assert [b.cycle for b in hub.boundaries] == [0, 100, 300, 1000]
        assert [b.gate_on for b in hub.boundaries] == [
            False, True, False, False,
        ]
        assert hub.counters["gate_activations"] == 1
        assert hub.counters["gate_deactivations"] == 1

    def test_redundant_markers_counted_not_spanned(self):
        hub = _bind(Telemetry(), gate_on=True)
        hub.now = 10
        hub.gate_changed(True)  # double ON
        hub.finish(100, 10)
        assert hub.counters["redundant_gate_markers"] == 1
        assert len(hub.gate_spans()) == 1  # just the initial span

    def test_initially_on_gate_opens_span_at_zero(self):
        hub = _bind(Telemetry(), gate_on=True)
        hub.finish(500, 100)
        spans = hub.gate_spans()
        assert [(s.begin, s.end) for s in spans] == [(0, 500)]
        assert spans[0].args.get("unterminated") is True

    def test_unbalanced_end_is_counted(self):
        hub = _bind(Telemetry())
        assert hub.end_span() is None
        assert hub.counters["unbalanced_span_ends"] == 1

    def test_forced_sample_at_transition(self):
        hub = _bind(Telemetry(interval=1000))
        hub.now, hub.instructions = 42, 10
        hub.gate_changed(True)
        assert len(hub.series) == 1
        assert hub.series.column("cycle")[0] == 42
        assert hub.series.column("gate_on")[0] == 1


class TestSweepTimeline:
    def test_record_and_totals(self):
        timeline = SweepTimeline()
        timeline.record(
            "cell", "vpenta", "base", start=0.0, end=2.0, status="ok"
        )
        timeline.record(
            "cell", "vpenta", "base", start=2.0, end=2.5,
            status="timeout", attempt=2, timeout_seconds=0.5,
        )
        assert len(timeline) == 2
        assert timeline.total_busy_seconds() == pytest.approx(2.5)
        assert len(timeline.by_status("timeout")) == 1
        assert timeline.spans[1].annotations["timeout_seconds"] == 0.5

    def test_restored_is_zero_length(self):
        timeline = SweepTimeline()
        span = timeline.restored("vpenta", "base")
        assert span.duration == 0.0
        assert span.status == "restored"

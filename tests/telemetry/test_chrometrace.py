"""Chrome trace export: valid JSON, nested B/E spans, marker agreement."""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import simulate_trace
from repro.core.versions import prepare_codes
from repro.params import base_config
from repro.telemetry import (
    SweepTimeline,
    Telemetry,
    sweep_trace_events,
    telemetry_trace_events,
    validate_trace,
    validate_trace_file,
    write_trace,
)
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec


@pytest.fixture(scope="module")
def machine():
    return base_config().scaled(TINY.machine_divisor)


@pytest.fixture(scope="module")
def gated_hub(machine):
    """A hub that observed a real gated run (tpcd_q3 has 6 toggles)."""
    codes = prepare_codes(get_spec("tpcd_q3"), TINY, machine)
    hub = Telemetry(interval=500, name="tpcd_q3/selective")
    result = simulate_trace(
        codes.selective_trace,
        machine,
        "bypass",
        initially_on=False,
        telemetry=hub,
    )
    return hub, result


class TestTelemetryTraceEvents:
    def test_file_round_trip_is_valid_json(self, gated_hub, tmp_path):
        hub, _ = gated_hub
        path = tmp_path / "trace.json"
        write_trace(path, telemetry_trace_events(hub), meta={"x": 1})
        data = json.loads(path.read_text())
        assert data["otherData"]["x"] == 1
        counts = validate_trace_file(path)
        assert counts["spans"] > 0
        assert counts["counters"] > 0

    def test_spans_are_properly_nested(self, gated_hub):
        hub, _ = gated_hub
        events = telemetry_trace_events(hub)
        stack = []
        for event in events:
            if event["ph"] == "B":
                stack.append(event)
            elif event["ph"] == "E":
                opener = stack.pop()
                assert opener["name"] == event["name"]
                assert event["ts"] >= opener["ts"]
        assert stack == []

    def test_on_off_spans_agree_with_marker_stream(self, gated_hub):
        """Every hw_region span pairs one executed ON with one OFF."""
        hub, result = gated_hub
        spans = hub.gate_spans()
        # tpcd_q3's selective trace executes hw_toggles markers; each
        # completed region consumed one ON and one OFF.
        assert result.hw_toggles == 2 * len(spans)
        assert hub.counters["gate_activations"] == len(spans)
        assert hub.counters["gate_deactivations"] == len(spans)
        # Spans are disjoint, ordered, and inside the run.
        previous_end = 0
        for span in spans:
            assert 0 <= span.begin < span.end <= result.cycles
            assert span.begin >= previous_end
            previous_end = span.end
        # The exported events carry exactly those spans.
        events = telemetry_trace_events(hub)
        begins = [
            event["ts"]
            for event in events
            if event["ph"] == "B" and event["name"] == "hw_region"
        ]
        assert sorted(begins) == [span.begin for span in spans]

    def test_initially_on_run_nests_under_run_span(self, machine):
        """A pure_hw run's gate span shares [0, total) with the run span."""
        codes = prepare_codes(get_spec("tpcd_q3"), TINY, machine)
        hub = Telemetry(interval=0)
        simulate_trace(
            codes.base_trace,
            machine,
            "bypass",
            initially_on=True,
            telemetry=hub,
        )
        counts = validate_trace({"traceEvents": telemetry_trace_events(hub)})
        assert counts["spans"] >= 2  # run + the initial hw_region

    def test_counter_tracks_cover_every_sample(self, gated_hub):
        hub, _ = gated_hub
        events = telemetry_trace_events(hub)
        misses = [e for e in events if e["name"] == "miss ratio (interval)"]
        assert len(misses) == len(hub.series)
        assert all(0.0 <= e["args"]["l1d"] <= 1.0 for e in misses)


class TestSweepTraceEvents:
    def test_sweep_rows_and_validation(self):
        timeline = SweepTimeline()
        timeline.record(
            "vpenta", "vpenta", "Base Confg.", start=0.0, end=1.5,
            status="ok",
        )
        timeline.record(
            "vpenta", "vpenta", "2x L1", start=0.2, end=0.9,
            status="error", attempt=2, message="boom",
        )
        timeline.restored("compress", "Base Confg.")
        events = sweep_trace_events(timeline)
        counts = validate_trace(events)
        assert counts["spans"] == 2
        assert counts["instants"] == 1
        # One thread row per config, named.
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"Base Confg.", "2x L1"}
        x = [event for event in events if event["ph"] == "X"]
        assert all(event["dur"] >= 1 for event in x)
        assert x[1]["args"]["message"] == "boom"


class TestValidateTrace:
    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_trace([{"ph": "Z", "name": "x", "ts": 0}])

    def test_rejects_unbalanced_begin(self):
        events = [{"ph": "B", "name": "x", "ts": 0, "pid": 1, "tid": 1}]
        with pytest.raises(ValueError, match="unclosed"):
            validate_trace(events)

    def test_rejects_mismatched_end(self):
        events = [
            {"ph": "B", "name": "x", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "E", "name": "y", "ts": 5, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="does not close"):
            validate_trace(events)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError, match="bad timestamp"):
            validate_trace([{"ph": "i", "name": "x", "ts": -1}])

    def test_rejects_end_before_begin(self):
        events = [
            {"ph": "B", "name": "x", "ts": 10, "pid": 1, "tid": 1},
            {"ph": "E", "name": "x", "ts": 5, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="before its"):
            validate_trace(events)

"""Telemetry must be invisible: attached or not, results are bit-identical.

Golden values below were captured from the simulator *before* the
telemetry subsystem existed (commit 43d12d5), so these tests pin three
properties at once:

1. this PR did not change any simulated number;
2. running with a telemetry hub attached yields the exact same
   ``SimulationResult`` as running without one;
3. the packed fast path and the object reference loop stay in lockstep
   under instrumentation.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import simulate_trace
from repro.core.versions import prepare_codes
from repro.params import base_config
from repro.telemetry import Telemetry
from repro.workloads.base import TINY
from repro.workloads.registry import get_spec

#: Pre-telemetry golden values at TINY scale on the scaled base machine.
#: key -> field subset of the SimulationResult (identical for the packed
#: and object trace forms).
GOLDEN = {
    ("vpenta", "base"): {
        "cycles": 72196,
        "instructions": 68046,
        "loads": 26208,
        "stores": 6552,
        "branches": 4539,
        "branch_mispredictions": 175,
        "l1d_misses": 16044,
        "l2_misses": 339,
        "mem_reads": 339,
    },
    # Re-pinned when the dependence-relation engine landed: it proves
    # the forward-elimination nests' (1, 0)/(2, 0) vectors safe for
    # unroll-and-jam (inner suffix all-"="), so the optimized variant
    # now runs with half the branches.  Address multiset vs. the base
    # program is unchanged (checked by the transform tests).
    ("vpenta", "selective"): {
        "cycles": 44899,
        "instructions": 63498,
        "branches": 2265,
        "branch_mispredictions": 85,
        "hw_toggles": 0,
        "l1d_misses": 6090,
        "l2_misses": 348,
        "mem_reads": 348,
    },
    ("compress", "base"): {
        "cycles": 125159,
        "instructions": 86016,
        "loads": 43008,
        "stores": 6144,
        "branches": 6144,
        "branch_mispredictions": 1,
        "l1d_misses": 13293,
        "l2_misses": 2652,
        "mem_reads": 2652,
    },
    ("compress", "selective"): {
        "cycles": 128549,
        "instructions": 86017,
        "hw_toggles": 1,
        "l1d_misses": 17453,
        "l2_misses": 2650,
        "mem_reads": 2650,
        "assist_hits": 2087,
    },
    ("tpcd_q3", "base"): {
        "cycles": 61604,
        "instructions": 32934,
        "loads": 11760,
        "stores": 3528,
        "branches": 3531,
        "branch_mispredictions": 10,
        "l1d_misses": 6816,
        "l2_misses": 3001,
        "mem_reads": 3001,
    },
    ("tpcd_q3", "selective"): {
        "cycles": 55101,
        "instructions": 32940,
        "hw_toggles": 6,
        "l1d_misses": 4306,
        "l2_misses": 1629,
        "mem_reads": 1629,
        "assist_hits": 119,
    },
}

BENCHMARKS = ("vpenta", "compress", "tpcd_q3")


@pytest.fixture(scope="module")
def machine():
    return base_config().scaled(TINY.machine_divisor)


@pytest.fixture(scope="module")
def codes_by_name(machine):
    return {
        name: prepare_codes(get_spec(name), TINY, machine)
        for name in BENCHMARKS
    }


def _simulate(codes, machine, version, telemetry=None):
    if version == "base":
        return simulate_trace(
            codes.base_trace, machine, telemetry=telemetry
        )
    return simulate_trace(
        codes.selective_trace,
        machine,
        "bypass",
        initially_on=False,
        telemetry=telemetry,
    )


def _extract(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "loads": result.loads,
        "stores": result.stores,
        "branches": result.branches,
        "branch_mispredictions": result.branch_mispredictions,
        "hw_toggles": result.hw_toggles,
        "l1d_misses": result.memory.l1d.misses,
        "l2_misses": result.memory.l2.misses,
        "mem_reads": result.memory.mem_reads,
        "assist_hits": result.memory.assist_hits,
    }


class TestGoldenPins:
    """Simulated numbers match the pre-telemetry seed exactly."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("version", ["base", "selective"])
    def test_packed(self, codes_by_name, machine, name, version):
        result = _simulate(codes_by_name[name], machine, version)
        got = _extract(result)
        for field, expected in GOLDEN[(name, version)].items():
            assert got[field] == expected, (name, version, field)

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("version", ["base", "selective"])
    def test_objects(self, codes_by_name, machine, name, version):
        codes = codes_by_name[name]
        trace = (
            codes.base_trace if version == "base" else codes.selective_trace
        ).to_trace()
        if version == "base":
            result = simulate_trace(trace, machine)
        else:
            result = simulate_trace(
                trace, machine, "bypass", initially_on=False
            )
        got = _extract(result)
        for field, expected in GOLDEN[(name, version)].items():
            assert got[field] == expected, (name, version, field)


class TestTelemetryIsPassive:
    """With a hub attached, every result field is bit-identical."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("version", ["base", "selective"])
    @pytest.mark.parametrize("interval", [0, 500])
    def test_packed_identical(
        self, codes_by_name, machine, name, version, interval
    ):
        codes = codes_by_name[name]
        plain = _simulate(codes, machine, version)
        hub = Telemetry(interval=interval, name=f"{name}/{version}")
        observed = _simulate(codes, machine, version, telemetry=hub)
        assert observed == plain  # full dataclass equality, all fields

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("version", ["base", "selective"])
    def test_objects_identical(self, codes_by_name, machine, name, version):
        codes = codes_by_name[name]
        trace = (
            codes.base_trace if version == "base" else codes.selective_trace
        ).to_trace()
        kwargs = (
            {}
            if version == "base"
            else {"mechanism": "bypass", "initially_on": False}
        )
        plain = simulate_trace(trace, machine, **kwargs)
        hub = Telemetry(interval=250)
        observed = simulate_trace(trace, machine, telemetry=hub, **kwargs)
        assert observed == plain

    def test_hub_observes_the_run(self, codes_by_name, machine):
        """The hub actually recorded something while staying passive."""
        codes = codes_by_name["tpcd_q3"]
        hub = Telemetry(interval=500)
        result = _simulate(codes, machine, "selective", telemetry=hub)
        assert hub.total_cycles == result.cycles
        assert len(hub.series) > 0
        assert hub.counters["gate_activations"] == result.hw_toggles / 2
        # Boundary snapshots bracket the run: first at t=0, last at end.
        assert hub.boundaries[0].cycle == 0
        assert hub.boundaries[-1].cycle == result.cycles
        assert hub.boundaries[-1].memory == result.memory

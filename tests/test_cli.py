"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.isa.encoding import decode_trace


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vpenta" in out and "tpcd_q6" in out

    def test_regions(self, capsys):
        assert main(["--scale", "tiny", "regions", "tpcd_q3"]) == 0
        out = capsys.readouterr().out
        assert "regions in program order" in out
        assert "ON" in out

    def test_run(self, capsys):
        assert main(["--scale", "tiny", "run", "vpenta"]) == 0
        out = capsys.readouterr().out
        assert "selective/bypass" in out
        assert "cycles" in out

    def test_profile_emits_valid_chrome_trace(self, tmp_path, capsys):
        from repro.telemetry import validate_trace_file

        out_file = tmp_path / "profile.json"
        assert main(
            [
                "--scale", "tiny",
                "profile", "mxm", "--trace-out", str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Profile: mxm" in out
        assert "region deltas sum to the run totals (exact)" in out
        counts = validate_trace_file(out_file)
        assert counts["spans"] > 0

    def test_profile_of_unmarked_version(self, capsys):
        assert main(
            ["--scale", "tiny", "profile", "tpcd_q3", "--version", "base"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 ON / 0 OFF markers" in out

    def test_run_telemetry_trace_out(self, tmp_path, capsys):
        from repro.telemetry import validate_trace_file

        out_file = tmp_path / "run.json"
        assert main(
            [
                "--scale", "tiny", "--trace-out", str(out_file),
                "run", "tpcd_q3", "--telemetry",
            ]
        ) == 0
        assert "selective/bypass" in capsys.readouterr().out
        assert validate_trace_file(out_file)["spans"] > 0

    def test_table2_trace_out_writes_sweep_timeline(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_trace

        out_file = tmp_path / "sweep.json"
        assert main(
            ["--scale", "tiny", "table2", "--trace-out", str(out_file)]
        ) == 0
        data = json.loads(out_file.read_text())
        counts = validate_trace(data)
        assert counts["spans"] == 13  # one X span per benchmark row

    def test_negative_interval_is_a_clean_error(self, capsys):
        assert main(["--interval", "-5", "profile", "mxm"]) == 2
        assert "--interval" in capsys.readouterr().err

    def test_trace_round_trips(self, tmp_path, capsys):
        output = tmp_path / "t.trace"
        assert main(
            ["--scale", "tiny", "trace", "compress", str(output)]
        ) == 0
        trace = decode_trace(output.read_bytes())
        assert trace.name == "compress/base"
        assert len(trace) > 1000

    def test_trace_selective_version(self, tmp_path):
        output = tmp_path / "sel.trace"
        assert main(
            ["--scale", "tiny", "trace", "chaos", str(output),
             "--version", "selective"]
        ) == 0
        trace = decode_trace(output.read_bytes())
        from repro.isa import Opcode
        assert trace.opcode_histogram()[Opcode.HW_ON] > 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["--scale", "tiny", "run", "nonesuch"])

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "3"])


class TestResilienceFlags:
    def test_non_positive_jobs_is_a_clean_error(self, capsys):
        assert main(["--jobs", "0", "list"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_resume_requires_store(self, capsys):
        assert main(["--resume", "list"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_bad_faults_spec_is_a_clean_error(self, capsys):
        assert main(["--faults", "explode:vpenta:*", "list"]) == 2
        assert "fault" in capsys.readouterr().err

    def test_runs_requires_store(self, capsys):
        assert main(["runs"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_serve_requires_store(self, capsys):
        assert main(["serve"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_runs_empty_store(self, tmp_path, capsys):
        assert main(["--store", str(tmp_path / "s"), "runs"]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_table3_store_resume_and_runs_listing(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        base = [
            "--scale", "tiny", "--store", store,
            "table3", "--config", "Base Confg.", "--benchmark", "vpenta",
        ]
        assert main(base) == 0
        capsys.readouterr()

        assert main(["--store", store, "runs"]) == 0
        out = capsys.readouterr().out
        assert "vpenta" in out and "0 corrupt" in out

        # Resumed run restores the cell and prints the same table.
        assert main(["--scale", "tiny", "--store", store, "--resume",
                     "table3", "--config", "Base Confg.",
                     "--benchmark", "vpenta"]) == 0
        captured = capsys.readouterr()
        assert "restored from store" in captured.err
        assert "Table 3" in captured.out

    def test_runs_purges_corrupt_entries(self, tmp_path, capsys):
        from repro.core.faults import corrupt_stored_entry
        from repro.core.runstore import RunStore

        store_dir = tmp_path / "s"
        store = RunStore(store_dir)
        store.put("goodkey", {"x": 1}, meta={"kind": "cell"})
        store.put("badkey", {"x": 2}, meta={"kind": "cell"})
        corrupt_stored_entry(store, "badkey")

        assert main(["--store", str(store_dir), "runs"]) == 1
        assert "CORRUPT" in capsys.readouterr().out

        assert main(["--store", str(store_dir), "runs", "--purge-bad"]) == 0
        captured = capsys.readouterr()
        assert "purged badkey" in captured.err
        assert "1 entry, 0 corrupt" in captured.out

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.isa.encoding import decode_trace


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vpenta" in out and "tpcd_q6" in out

    def test_regions(self, capsys):
        assert main(["--scale", "tiny", "regions", "tpcd_q3"]) == 0
        out = capsys.readouterr().out
        assert "regions in program order" in out
        assert "ON" in out

    def test_run(self, capsys):
        assert main(["--scale", "tiny", "run", "vpenta"]) == 0
        out = capsys.readouterr().out
        assert "selective/bypass" in out
        assert "cycles" in out

    def test_trace_round_trips(self, tmp_path, capsys):
        output = tmp_path / "t.trace"
        assert main(
            ["--scale", "tiny", "trace", "compress", str(output)]
        ) == 0
        trace = decode_trace(output.read_bytes())
        assert trace.name == "compress/base"
        assert len(trace) > 1000

    def test_trace_selective_version(self, tmp_path):
        output = tmp_path / "sel.trace"
        assert main(
            ["--scale", "tiny", "trace", "chaos", str(output),
             "--version", "selective"]
        ) == 0
        trace = decode_trace(output.read_bytes())
        from repro.isa import Opcode
        assert trace.opcode_histogram()[Opcode.HW_ON] > 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["--scale", "tiny", "run", "nonesuch"])

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "3"])
